// Benchmarks regenerating every experiment in EXPERIMENTS.md. The paper
// (a tutorial) has no tables; Figure 1 and each comparative claim in the
// text define the experiments — see DESIGN.md §3 for the index.
//
// Custom metrics reported alongside ns/op:
//
//	sim-us/op    simulated end-to-end latency (fabric hops, cold starts)
//	hops/op      simulated network messages
//	anomalies    consistency violations observed during the bench
package tca

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tca/internal/actor"
	"tca/internal/core"
	"tca/internal/dataflow"
	"tca/internal/dedup"
	"tca/internal/faas"
	"tca/internal/fabric"
	"tca/internal/kv"
	"tca/internal/metrics"
	"tca/internal/mq"
	"tca/internal/outbox"
	"tca/internal/rpc"
	"tca/internal/saga"
	"tca/internal/store"
	"tca/internal/workflow"
	"tca/internal/workload"
	"tca/internal/xa"
)

// --- F1: the taxonomy matrix ---------------------------------------------------

// BenchmarkF1_TaxonomyMatrix runs the same bank-transfer workload under
// every programming model of Figure 1 and reports real cost, simulated
// latency and hop count per cell — driven through the application layer:
// one BankApp, five Deploy targets.
func BenchmarkF1_TaxonomyMatrix(b *testing.B) {
	for _, model := range allModels {
		b.Run(model.String(), func(b *testing.B) {
			env := NewEnv(1, 3)
			cell, err := Deploy(model, BankApp(), env)
			if err != nil {
				b.Fatal(err)
			}
			defer cell.Close()
			const accounts = 64
			for a := 0; a < accounts; a++ {
				args, _ := json.Marshal(bankDepositArgs{Account: a, Amount: 1_000_000})
				if _, err := cell.Invoke(fmt.Sprintf("seed-%d", a), "deposit", args, nil); err != nil {
					b.Fatal(err)
				}
			}
			if err := cell.Settle(); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewBank(7, accounts, 0)
			var sim, hops int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				args, _ := json.Marshal(bankTransferArgs{From: op.From, To: op.To, Amount: op.Amount})
				tr := fabric.NewTrace()
				cell.Invoke(fmt.Sprintf("f1-%d", i), "transfer", args, tr)
				sim += int64(tr.Total())
				hops += int64(tr.Hops())
			}
			cell.Settle()
			b.StopTimer()
			b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
}

// --- E1: actor transactions vs plain actor calls --------------------------------

func BenchmarkE1_ActorTxnOverhead(b *testing.B) {
	for _, accounts := range []int{64, 4} { // low vs high contention
		env := NewEnv(1, 3)
		sys := actor.NewSystem(env.Cluster, actor.Config{})
		defer sys.Stop()
		sys.Register("plain", func(ref actor.Ref) actor.Behavior {
			bal := int64(0)
			return actor.BehaviorFunc(func(ctx *actor.Ctx, msg actor.Message) ([]byte, error) {
				bal++
				return nil, nil
			})
		})
		coord := actor.NewCoordinator(sys)
		for a := 0; a < accounts; a++ {
			coord.SeedState(actor.Ref{Type: "acc", ID: fmt.Sprintf("%d", a)}, store.Row{"balance": int64(1 << 40)})
		}
		gen := workload.NewBank(3, accounts, 0)

		b.Run(fmt.Sprintf("plain-call/accounts=%d", accounts), func(b *testing.B) {
			var sim int64
			for i := 0; i < b.N; i++ {
				tr := fabric.NewTrace()
				sys.Ask(actor.Ref{Type: "plain", ID: fmt.Sprintf("%d", i%accounts)}, "inc", nil, tr)
				sim += int64(tr.Total())
			}
			b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
		})
		b.Run(fmt.Sprintf("transaction/accounts=%d", accounts), func(b *testing.B) {
			var sim int64
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				tr := fabric.NewTrace()
				coord.Run(tr, func(t *actor.ActorTxn) error {
					from := actor.Ref{Type: "acc", ID: fmt.Sprintf("%d", op.From)}
					to := actor.Ref{Type: "acc", ID: fmt.Sprintf("%d", op.To)}
					f, _, err := t.Read(from)
					if err != nil {
						return err
					}
					g, _, err := t.Read(to)
					if err != nil {
						return err
					}
					if err := t.Write(from, store.Row{"balance": f.Int("balance") - op.Amount}); err != nil {
						return err
					}
					return t.Write(to, store.Row{"balance": g.Int("balance") + op.Amount})
				})
				sim += int64(tr.Total())
			}
			b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
		})
	}
}

// --- E2: delivery guarantees ------------------------------------------------------

func BenchmarkE2_DeliveryGuarantees(b *testing.B) {
	type variant struct {
		name string
		mode mq.DeliveryMode
		dup  bool // inject duplicate batches
		ded  bool // consumer-side dedup
	}
	variants := []variant{
		{"at-most-once", mq.AtMostOnce, false, false},
		{"at-least-once-raw", mq.AtLeastOnce, true, false},
		{"at-least-once-dedup", mq.AtLeastOnce, true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			broker := mq.NewBroker()
			if v.dup {
				cfg := fabric.DefaultConfig()
				cfg.DupProb = 0.10
				broker.WithChaos(fabric.NewCluster(cfg, "n"))
			}
			broker.CreateTopic("in", 1)
			p := broker.NewProducer("")
			c, _ := broker.NewConsumer("g", v.mode, "in")
			seen := dedup.New(0)
			applied := map[string]int{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("m-%d", i)
				p.Send("in", key, []byte("x"))
				for {
					msgs, _ := c.Poll(64)
					if msgs == nil {
						break
					}
					if v.mode == mq.AtMostOnce && i%10 == 0 {
						// Simulated consumer crash after Poll: the offset is
						// already committed, so the batch is lost forever.
						continue
					}
					for _, m := range msgs {
						if v.ded {
							seen.Do(m.Key, func() ([]byte, error) {
								applied[m.Key]++
								return nil, nil
							})
						} else {
							applied[m.Key]++
						}
					}
					c.Ack()
				}
			}
			b.StopTimer()
			anomalies := 0
			for _, n := range applied {
				if n != 1 {
					anomalies++
				}
			}
			// at-most-once may also have lost messages entirely.
			if v.mode == mq.AtMostOnce {
				anomalies += b.N - len(applied)
			}
			b.ReportMetric(float64(anomalies), "anomalies")
		})
	}
}

// --- E3: saga vs 2PC ---------------------------------------------------------------

func BenchmarkE3_SagaVs2PC(b *testing.B) {
	for _, parts := range []int{2, 4, 8} {
		setup := func() (*fabric.Cluster, []*store.DB) {
			nodes := make([]fabric.NodeID, parts+1)
			nodes[0] = "coord"
			dbs := make([]*store.DB, parts)
			for i := 0; i < parts; i++ {
				nodes[i+1] = fabric.NodeID(fmt.Sprintf("p%d", i))
				dbs[i] = store.NewDB(store.Config{Name: fmt.Sprintf("p%d", i)})
				dbs[i].CreateTable("t")
			}
			cfg := fabric.DefaultConfig()
			return fabric.NewCluster(cfg, nodes...), dbs
		}
		b.Run(fmt.Sprintf("2pc/participants=%d", parts), func(b *testing.B) {
			cl, dbs := setup()
			coord := xa.NewCoordinator(cl, "coord")
			names := make([]string, parts)
			for i, db := range dbs {
				names[i] = db.Name()
				coord.Enlist(xa.NewResourceManager(db.Name(), fabric.NodeID(fmt.Sprintf("p%d", i)), db))
			}
			var sim int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := fabric.NewTrace()
				coord.Run(fmt.Sprintf("g%d", i), names, tr, func(br map[string]*store.Txn) error {
					for _, name := range names {
						if err := br[name].Put("t", fmt.Sprintf("k%d", i), store.Row{"v": int64(i)}); err != nil {
							return err
						}
					}
					return nil
				})
				sim += int64(tr.Total())
			}
			b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
		})
		b.Run(fmt.Sprintf("saga/participants=%d", parts), func(b *testing.B) {
			cl, dbs := setup()
			_ = cl
			orch := saga.NewOrchestrator(nil)
			var sim int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := fabric.NewTrace()
				steps := make([]saga.Step, parts)
				for pi := 0; pi < parts; pi++ {
					db := dbs[pi]
					node := fabric.NodeID(fmt.Sprintf("p%d", pi))
					steps[pi] = saga.Step{
						Name: fmt.Sprintf("s%d", pi),
						Action: func(c *saga.Ctx) error {
							cl.Send("coord", node, tr) // request hop
							err := db.Update(func(tx *store.Txn) error {
								return tx.Put("t", c.SagaID, store.Row{"v": int64(1)})
							})
							cl.Send(node, "coord", tr) // reply hop
							return err
						},
						Compensate: func(c *saga.Ctx) error {
							return db.Update(func(tx *store.Txn) error {
								return tx.Delete("t", c.SagaID)
							})
						},
					}
				}
				orch.Execute(&saga.Definition{Name: "bench", Steps: steps}, fmt.Sprintf("s%d", i), nil)
				sim += int64(tr.Total())
			}
			b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
		})
	}
}

// --- E4: shared vs per-service database ---------------------------------------------

func BenchmarkE4_SharedVsPerServiceDB(b *testing.B) {
	run := func(b *testing.B, shared bool) {
		mk := func(name string) *store.DB {
			return store.NewDB(store.Config{Name: name, MaxConcurrent: 2, ServiceTime: 20 * time.Microsecond})
		}
		victimDB := mk("victim")
		hotDB := victimDB
		if !shared {
			hotDB = mk("hot")
		}
		victimDB.CreateTable("t")
		hotDB.CreateTable("t")
		stop := make(chan struct{})
		defer close(stop)
		// Noisy neighbor: eight hot workers hammering its database.
		for w := 0; w < 8; w++ {
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					hotDB.Update(func(tx *store.Txn) error {
						return tx.Put("t", "hot", store.Row{"v": int64(1)})
					})
				}
			}()
		}
		lat := int64(0)
		worst := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			victimDB.View(func(tx *store.Txn) error {
				tx.Get("t", "victim")
				return nil
			})
			d := int64(time.Since(t0))
			lat += d
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(float64(lat)/float64(b.N)/1e3, "victim-us/op")
		b.ReportMetric(float64(worst)/1e3, "victim-max-us")
	}
	b.Run("shared-db", func(b *testing.B) { run(b, true) })
	b.Run("db-per-service", func(b *testing.B) { run(b, false) })
}

// --- E5: embedded vs external state ---------------------------------------------------

func BenchmarkE5_EmbeddedVsExternal(b *testing.B) {
	b.Run("embedded-kv", func(b *testing.B) {
		s := kv.NewMemory()
		defer s.Close()
		s.Put("k", []byte("v"))
		var sim int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get("k")
			// Embedded state: no network hop at all.
		}
		b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
	})
	b.Run("external-db-rpc", func(b *testing.B) {
		cl := fabric.NewCluster(fabric.DefaultConfig(), "app", "db")
		tr := rpc.NewTransport(cl)
		db := store.NewDB(store.Config{})
		db.CreateTable("t")
		db.Update(func(tx *store.Txn) error { return tx.Put("t", "k", store.Row{"v": int64(1)}) })
		tr.Register("get", "db", func(c *rpc.Call, req []byte) ([]byte, error) {
			var out []byte
			db.View(func(tx *store.Txn) error {
				row, _, _ := tx.Get("t", "k")
				out = []byte(fmt.Sprint(row.Int("v")))
				return nil
			})
			return out, nil
		})
		var sim int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trace := fabric.NewTrace()
			tr.Call("app", "get", nil, trace, rpc.CallOptions{})
			sim += int64(trace.Total())
		}
		b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
	})
}

// --- E6: cold starts ---------------------------------------------------------------------

func BenchmarkE6_ColdStart(b *testing.B) {
	run := func(b *testing.B, evictEvery int) {
		p := faas.NewPlatform(fabric.SingleNode(), faas.DefaultConfig())
		p.Register("fn", func(ctx *faas.Ctx, payload []byte) ([]byte, error) { return nil, nil })
		var sim int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if evictEvery > 0 && i%evictEvery == 0 {
				p.EvictIdle("fn")
			}
			tr := fabric.NewTrace()
			p.Invoke("fn", "k", nil, tr)
			sim += int64(tr.Total())
		}
		b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
		b.ReportMetric(float64(p.Metrics().Counter("faas.cold_starts").Value()), "cold-starts")
	}
	b.Run("always-warm", func(b *testing.B) { run(b, 0) })
	b.Run("evict-every-10", func(b *testing.B) { run(b, 10) })
	b.Run("evict-every-2", func(b *testing.B) { run(b, 2) })
}

// --- E7: exactly-once is not isolation ------------------------------------------------------

func BenchmarkE7_IsolationAnomalies(b *testing.B) {
	b.Run("statefun-no-isolation", func(b *testing.B) {
		env := NewEnv(1, 3)
		bank, err := NewBank(StatefulDataflow, env)
		if err != nil {
			b.Fatal(err)
		}
		defer bank.Close()
		bank.Deposit(0, 1_000_000)
		bank.Deposit(1, 1_000_000)
		var anomalies int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bank.Transfer(fmt.Sprintf("t%d", i), 0, 1, 10, nil)
			// Observer audits mid-flight: with no isolation, totals off.
			b0, _ := balanceNoSettle(bank, 0)
			b1, _ := balanceNoSettle(bank, 1)
			if b0+b1 != 2_000_000 {
				anomalies++
			}
			bank.Settle()
		}
		b.ReportMetric(float64(anomalies), "anomalies")
	})
	b.Run("core-serializable", func(b *testing.B) {
		env := NewEnv(1, 3)
		bank, err := NewBank(Deterministic, env)
		if err != nil {
			b.Fatal(err)
		}
		defer bank.Close()
		bank.Deposit(0, 1_000_000)
		bank.Deposit(1, 1_000_000)
		var anomalies int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bank.Transfer(fmt.Sprintf("t%d", i), 0, 1, 10, nil); err != nil {
				b.Fatal(err)
			}
			b0, _ := bank.Balance(0)
			b1, _ := bank.Balance(1)
			if b0+b1 != 2_000_000 {
				anomalies++
			}
		}
		b.ReportMetric(float64(anomalies), "anomalies")
	})
}

// balanceNoSettle peeks at a statefun balance without waiting for
// quiescence (the dirty-read an external observer performs).
func balanceNoSettle(bank Bank, account int) (int64, error) {
	type peeker interface{ PeekBalance(int) int64 }
	if p, ok := bank.(peeker); ok {
		return p.PeekBalance(account), nil
	}
	return bank.Balance(account)
}

// --- E8: checkpoint + recovery cost vs state size --------------------------------------------

func BenchmarkE8_CheckpointRecovery(b *testing.B) {
	for _, keys := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			broker := mq.NewBroker()
			broker.CreateTopic("in", 2)
			j := dataflow.NewJob(broker, dataflow.Config{Name: "ck"}).
				Source("in").
				Stage("acc", 2, func(ctx *dataflow.OpCtx, rec dataflow.Record) {
					ctx.State().Put(rec.Key, rec.Value)
				}).
				Sink(func(dataflow.Record) {})
			if err := j.Start(); err != nil {
				b.Fatal(err)
			}
			defer j.Stop()
			p := broker.NewProducer("")
			for i := 0; i < keys; i++ {
				p.Send("in", fmt.Sprintf("k%d", i), []byte("valuevaluevalue"))
			}
			if err := j.WaitIdle(30 * time.Second); err != nil {
				b.Fatal(err)
			}
			var ckNanos, recNanos int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := j.TriggerCheckpoint(); err != nil {
					b.Fatal(err)
				}
				ckNanos += int64(time.Since(t0))
				j.Crash()
				t1 := time.Now()
				if err := j.Recover(); err != nil {
					b.Fatal(err)
				}
				if err := j.WaitIdle(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				recNanos += int64(time.Since(t1))
			}
			b.ReportMetric(float64(ckNanos)/float64(b.N)/1e6, "checkpoint-ms")
			b.ReportMetric(float64(recNanos)/float64(b.N)/1e6, "recovery-ms")
		})
	}
}

// --- E9: idempotency-key overhead --------------------------------------------------------------

func BenchmarkE9_IdempotencyOverhead(b *testing.B) {
	for _, dup := range []float64{0, 0.10, 0.20} {
		for _, useKeys := range []bool{false, true} {
			name := fmt.Sprintf("dup=%.0f%%/keys=%v", dup*100, useKeys)
			b.Run(name, func(b *testing.B) {
				cfg := fabric.DefaultConfig()
				cfg.DupProb = dup
				cl := fabric.NewCluster(cfg, "c", "s")
				tr := rpc.NewTransport(cl)
				var effects atomic.Int64
				h := func(c *rpc.Call, req []byte) ([]byte, error) {
					effects.Add(1)
					return nil, nil
				}
				if useKeys {
					tr.Register("op", "s", rpc.WithIdempotency(dedup.New(0), h))
				} else {
					tr.Register("op", "s", h)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opts := rpc.CallOptions{Retries: 2, RetryBackoff: time.Millisecond}
					if useKeys {
						opts.IdempotencyKey = fmt.Sprintf("k%d", i)
					}
					tr.Call("c", "op", nil, nil, opts)
				}
				b.StopTimer()
				over := effects.Load() - int64(b.N)
				if over < 0 {
					over = 0
				}
				b.ReportMetric(float64(over), "duplicate-effects")
			})
		}
	}
}

// --- E10: open vs closed loop -------------------------------------------------------------------

func BenchmarkE10_OpenVsClosedLoop(b *testing.B) {
	// Capacity: 1 slot × 100µs service = 10k ops/s.
	service := workload.SpinService(1, 100*time.Microsecond)
	b.Run("closed/clients=4", func(b *testing.B) {
		res := workload.ClosedLoop(4, b.N/4+1, 0, service)
		b.ReportMetric(float64(res.Latency.P99)/1e3, "p99-us")
		b.ReportMetric(res.Throughput(), "ops/s")
	})
	for _, rate := range []float64{5000, 20000} { // 0.5x and 2x capacity
		b.Run(fmt.Sprintf("open/rate=%.0f", rate), func(b *testing.B) {
			n := b.N
			if n > 2000 {
				n = 2000
			}
			res := workload.OpenLoop(1, n, rate, service)
			b.ReportMetric(float64(res.Latency.P99)/1e3, "p99-us")
			b.ReportMetric(res.Throughput(), "ops/s")
		})
	}
}

// --- E11: entity critical sections ----------------------------------------------------------------

func BenchmarkE11_EntityLocks(b *testing.B) {
	p := faas.NewPlatform(fabric.SingleNode(), faas.DefaultConfig())
	em := p.Entities()
	a1 := faas.EntityID{Type: "acc", ID: "1"}
	a2 := faas.EntityID{Type: "acc", ID: "2"}
	em.Signal(a1, func(store.Row) (store.Row, error) { return store.Row{"balance": int64(1 << 40)}, nil })
	em.Signal(a2, func(store.Row) (store.Row, error) { return store.Row{"balance": int64(1 << 40)}, nil })
	b.Run("single-entity-signal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			em.Signal(a1, func(s store.Row) (store.Row, error) {
				return store.Row{"balance": s.Int("balance") + 1}, nil
			})
		}
	})
	b.Run("two-entity-critical-section", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cs := em.Lock(a1, a2)
			cs.Update(a1, func(s store.Row) (store.Row, error) {
				return store.Row{"balance": s.Int("balance") - 1}, nil
			})
			cs.Update(a2, func(s store.Row) (store.Row, error) {
				return store.Row{"balance": s.Int("balance") + 1}, nil
			})
			cs.Unlock()
		}
	})
}

// --- E12: workflow replay cost ----------------------------------------------------------------------

func BenchmarkE12_WorkflowReplay(b *testing.B) {
	for _, steps := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("history=%d", steps), func(b *testing.B) {
			e := workflow.NewEngine(nil)
			e.Register("wf", func(ctx *workflow.Ctx) error {
				for i := 0; i < steps; i++ {
					if _, err := ctx.Activity(fmt.Sprintf("s%d", i), func() ([]byte, error) {
						return []byte("r"), nil
					}); err != nil {
						return err
					}
				}
				// A worker crash keeps the status "running", so every Run
				// replays the full history — exactly what we measure.
				return workflow.ErrCrashInjected
			})
			e.Run("wf", "warm") // builds the history once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run("wf", "warm")
			}
		})
	}
}

// --- E13: outbox vs dual write -------------------------------------------------------------------------

func BenchmarkE13_OutboxVsDualWrite(b *testing.B) {
	b.Run("dual-write-crashes", func(b *testing.B) {
		db := store.NewDB(store.Config{})
		db.CreateTable("orders")
		broker := mq.NewBroker()
		broker.CreateTopic("events", 1)
		w := &outbox.DualWriter{DB: db, Broker: broker}
		lost, phantom := 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			crash := outbox.NoCrash
			switch i % 10 { // 20% crash rate, split between the two points
			case 0:
				crash = outbox.CrashAfterDB
				lost++
			case 1:
				crash = outbox.CrashAfterPublish
				phantom++
			}
			w.Write("orders", fmt.Sprintf("o%d", i), store.Row{"v": int64(i)},
				outbox.Event{ID: fmt.Sprintf("e%d", i), Topic: "events", Key: "k"}, crash)
		}
		b.ReportMetric(float64(lost+phantom), "anomalies")
	})
	b.Run("outbox", func(b *testing.B) {
		db := store.NewDB(store.Config{})
		db.CreateTable("orders")
		broker := mq.NewBroker()
		broker.CreateTopic("events", 1)
		relay := outbox.NewRelay(db, broker)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			outbox.TransactionalWrite(db, int64(i), "orders", fmt.Sprintf("o%d", i),
				store.Row{"v": int64(i)},
				outbox.Event{ID: fmt.Sprintf("e%d", i), Topic: "events", Key: "k"})
			if i%16 == 0 {
				relay.Drain()
			}
		}
		relay.Drain()
		b.StopTimer()
		hw, _ := broker.HighWater(mq.TopicPartition{Topic: "events", Partition: 0})
		anomalies := int64(b.N) - hw
		if anomalies < 0 {
			anomalies = 0 // redeliveries are dedupable, not anomalies
		}
		b.ReportMetric(float64(anomalies), "anomalies")
	})
}

// --- E14: TPC-C subset across coordination styles ----------------------------------------------------------

func BenchmarkE14_TPCC(b *testing.B) {
	// Throughput measurement: parallel clients pipeline their requests,
	// which is where the deterministic runtime's lack of coordination pays
	// off and where 2PC's lock windows bite. All three styles now run the
	// real TPCCApp bodies through the application layer.
	styles := []struct {
		name  string
		model ProgrammingModel
	}{
		{"core", Deterministic},
		{"actor-2pc", Actors},
		{"saga", Microservices},
	}
	for _, warehouses := range []int{1, 4} {
		cfg := workload.DefaultTPCCConfig(warehouses)
		for _, style := range styles {
			b.Run(fmt.Sprintf("%s/wh=%d", style.name, warehouses), func(b *testing.B) {
				env := NewEnv(1, 3)
				// Workers widens the core cell for the parallel clients;
				// Clients keeps the sync cells' worker pool above
				// RunParallel's goroutine count so the pool never caps
				// this benchmark's concurrency.
				cell, err := DeployWith(style.model, TPCCApp(), env, Options{Workers: 16, Clients: 64})
				if err != nil {
					b.Fatal(err)
				}
				defer cell.Close()
				var seq, sim atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					gen := workload.NewTPCC(seq.Add(1), cfg)
					for pb.Next() {
						op := gen.Next()
						args, _ := json.Marshal(op)
						tr := fabric.NewTrace()
						cell.Invoke(fmt.Sprintf("t%d", seq.Add(1)), tpccOpName(op), args, tr)
						sim.Add(int64(tr.Total()))
					}
				})
				b.ReportMetric(float64(sim.Load())/float64(b.N)/1e3, "sim-us/op")
			})
		}
	}
}

// --- E17: the TPC-C taxonomy matrix ------------------------------------------------------------

// BenchmarkE17_TPCCMatrix runs the identical seeded TPC-C stream under
// every programming model via the application layer and audits each cell
// against the serial reference: per-model throughput, simulated latency,
// and integrity-constraint anomalies (stock never negative, warehouse YTD
// = sum of payments, district counters = NewOrder count). Isolated cells
// report zero anomalies; the dataflow cell's pipelined execution may
// legitimately drift on the read-modify-write stock keys — exactly-once
// is not isolation.
//
// The cross-warehouse rate (TPCCOp.Remote) is swept over {0%, 10%, 50%}
// at 4 warehouses: remote transactions are the app-level counterpart of
// E16's cross-partition ratio, and the sweep ties the two curves together
// — the same seeded transactions, only the Remote bit changes. The query
// rate (TPCCConfig.QueryFrac ∈ {0%, 20%}) is the matrix's read-path
// column, like E18's: OrderStatus/StockLevel ride every cell's ReadOnly
// fast path, so cells with a cheap query path gain more from the same
// query share.
func BenchmarkE17_TPCCMatrix(b *testing.B) {
	for _, warehouses := range []int{1, 4} { // contention knob: hot vs spread districts
		for _, remotePct := range []int{0, 10, 50} {
			if warehouses == 1 && remotePct > 0 {
				continue // a single warehouse has no cross-warehouse transactions
			}
			for _, queryPct := range []int{0, 20} {
				cfg := workload.DefaultTPCCConfig(warehouses)
				cfg.RemoteFrac = workload.RemoteFrac(float64(remotePct) / 100)
				cfg.QueryFrac = float64(queryPct) / 100
				for _, model := range allModels {
					b.Run(fmt.Sprintf("%s/wh=%d/remote=%d%%/query=%d%%", model, warehouses, remotePct, queryPct), func(b *testing.B) {
						env := NewEnv(1, 3)
						cell, err := Deploy(model, TPCCApp(), env)
						if err != nil {
							b.Fatal(err)
						}
						defer cell.Close()
						gen := workload.NewTPCC(11, cfg)
						audit := NewTPCCAuditor()
						var sim, queries int64
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							op := gen.Next()
							args, _ := json.Marshal(op)
							tr := fabric.NewTrace()
							_, err := cell.Invoke(fmt.Sprintf("e17-%d", i), tpccOpName(op), args, tr)
							// The eventual cell's ops are recorded
							// unconditionally: even now that Invoke surfaces
							// drops and timeouts, the accepted op is exactly-
							// once in the ingress and applies regardless — the
							// same rule E18/E19 and tcabench use, keeping every
							// driver on one audit baseline for identical
							// streams.
							if model == StatefulDataflow || err == nil {
								audit.RecordOp(op)
							}
							if op.Kind == workload.TPCCOrderStatus || op.Kind == workload.TPCCStockLevel {
								queries++
							}
							sim += int64(tr.Total())
							// Bound the eventual cell's in-flight choreography so the
							// final settle stays within its timeout.
							if model == StatefulDataflow && i%256 == 255 {
								if err := cell.Settle(); err != nil {
									b.Fatal(err)
								}
							}
						}
						if err := cell.Settle(); err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						anomalies, err := audit.Verify(cell)
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
						b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
						b.ReportMetric(float64(len(anomalies)), "anomalies")
						b.ReportMetric(100*float64(queries)/float64(b.N), "query-%")
					})
				}
			}
		}
	}
}

// --- E18: the marketplace taxonomy matrix --------------------------------------------------------

// BenchmarkE18_MarketplaceMatrix supersedes E15's hand-rolled per-model
// marketplace adapters: the Online Marketplace mix (carts, checkouts,
// queries, price updates) is now one MarketApp deployed under all five
// programming models from the identical seeded stream, audited against
// the serial reference. Product popularity (ZipfS) is the contention
// knob: at high skew, checkouts and price updates pile onto the same hot
// products, and cells without isolation charge stale prices — the
// checkout/price write skew MarketAuditor reports as order-ledger drift.
// Isolated cells report zero at any skew.
//
// The readpath sub-benchmarks are the read-only A/B: a pure query-product
// stream with the ReadOnly hint honored vs stripped, on the two cells
// whose query path shortcut is largest (actors skip 2PL exclusive locks +
// 2PC; the deterministic core skips the log append and the write
// schedule entirely).
func BenchmarkE18_MarketplaceMatrix(b *testing.B) {
	for _, zipf := range []float64{1.1, 4.0} { // contention knob: mild vs hot-product skew
		cfg := workload.DefaultMarketConfig()
		cfg.ZipfS = zipf
		for _, model := range allModels {
			b.Run(fmt.Sprintf("%s/zipf=%.1f", model, zipf), func(b *testing.B) {
				env := NewEnv(1, 3)
				cell, err := Deploy(model, MarketApp(), env)
				if err != nil {
					b.Fatal(err)
				}
				defer cell.Close()
				gen := workload.NewMarket(5, cfg)
				audit := NewMarketAuditor()
				var sim, queries int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := gen.Next()
					args, _ := json.Marshal(op)
					tr := fabric.NewTrace()
					_, err := cell.Invoke(fmt.Sprintf("e18-%d", i), marketOpName(op), args, tr)
					// The eventual cell's ops are recorded unconditionally
					// (accepted ops apply even when Invoke reports a drop or
					// timeout); its pipelined in-flight ops reading stale
					// carts/prices is exactly the drift the audit then
					// reports.
					if model == StatefulDataflow || err == nil {
						audit.RecordOp(op)
					}
					if op.Kind == workload.MarketQueryProduct {
						queries++
					}
					sim += int64(tr.Total())
					// Bound the eventual cell's in-flight choreography so the
					// final settle stays within its timeout.
					if model == StatefulDataflow && i%256 == 255 {
						if err := cell.Settle(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := cell.Settle(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				anomalies, err := audit.Verify(cell)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
				b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
				b.ReportMetric(float64(len(anomalies)), "anomalies")
				b.ReportMetric(100*float64(queries)/float64(b.N), "query-%")
			})
		}
	}
	// Read-only path A/B: the same query under the same cell, with the
	// hint honored vs stripped — the speedup is the write machinery saved.
	queryName := workload.MarketQueryProduct.String()
	for _, model := range []ProgrammingModel{Actors, Deterministic} {
		for _, hint := range []bool{true, false} {
			b.Run(fmt.Sprintf("readpath/%s/ro=%v", model, hint), func(b *testing.B) {
				env := NewEnv(1, 3)
				op, _ := MarketApp().Op(queryName)
				op.ReadOnly = hint // strip or keep the access class
				cell, err := Deploy(model, NewApp("market-query").Register(op), env)
				if err != nil {
					b.Fatal(err)
				}
				defer cell.Close()
				query := workload.MarketOp{Kind: workload.MarketQueryProduct, Product: 1}
				args, _ := json.Marshal(query)
				var sim int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr := fabric.NewTrace()
					if _, err := cell.Invoke(fmt.Sprintf("rp-%d", i), queryName, args, tr); err != nil {
						b.Fatal(err)
					}
					sim += int64(tr.Total())
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
				b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
			})
		}
	}
}

// --- E19: the social-network taxonomy matrix -----------------------------------------------------

// BenchmarkE19_SocialMatrix deploys the DeathStarBench-style compose-post
// fan-out under all five programming models: the declared key set is the
// author's follower-timeline list, so the fan-out knob directly widens
// every cell's transaction — more saga steps, more 2PL locks and 2PC
// participants, more entity locks, more choreography sends, and more
// partitions touched on the 4-partition deterministic core (its gseq
// path, driven by a real workload). The sweep now crosses the statefun
// runtime's 32-send budget (fanout ∈ {8, 24, 64, 128}): wide posts chunk
// the read-scatter and write-emit across continuation rounds instead of
// hard-failing, so the old cliff shows up as a cost curve, not an error.
// One op in five is the read-only read-timeline, and a 10% follow/
// unfollow churn mutates fan-out key sets between posts. The whole state
// model commutes (bounded-list merges, ±1 edge deltas), so every cell
// must audit clean — exact delivery and read-your-writes: E19 shows the
// taxonomy's cost curves, E18 its anomalies.
func BenchmarkE19_SocialMatrix(b *testing.B) {
	const churn = 0.10
	for _, fanout := range []int{8, 24, 64, 128} { // max followers: across the old statefun 32-send cliff
		// Enough users that even the celebrity tail can have `fanout`
		// distinct followers.
		users := 64
		if users < 2*fanout {
			users = 2 * fanout
		}
		// Wide posts are hundreds of choreography messages each: settle
		// the eventual cell more often so its backlog stays bounded.
		settleEvery := 256
		if fanout >= 64 {
			settleEvery = 64
		}
		for _, model := range allModels {
			b.Run(fmt.Sprintf("%s/fanout=%d", model, fanout), func(b *testing.B) {
				env := NewEnv(1, 3)
				// Partitions shards the deterministic cell so wide posts
				// exercise cross-partition scheduling; other models ignore it.
				cell, err := DeployWith(model, SocialApp(), env, Options{Partitions: 4})
				if err != nil {
					b.Fatal(err)
				}
				defer cell.Close()
				gen := workload.NewSocialChurn(9, users, fanout, churn)
				audit := NewSocialAuditor()
				var sim, fanoutSum, posts int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr := fabric.NewTrace()
					if i%5 == 4 {
						args, _ := json.Marshal(socialTimelineArgs{User: i % users})
						cell.Invoke(fmt.Sprintf("e19q-%d", i), SocialReadTimeline, args, tr)
					} else {
						op := gen.Next()
						args, _ := json.Marshal(op)
						if _, err := cell.Invoke(fmt.Sprintf("e19-%d", i), SocialOpName(op), args, tr); err == nil || model == StatefulDataflow {
							audit.RecordOp(op)
						}
						if op.Kind == workload.SocialPost {
							fanoutSum += int64(len(op.Followers))
							posts++
						}
					}
					sim += int64(tr.Total())
					if model == StatefulDataflow && i%settleEvery == settleEvery-1 {
						if err := cell.Settle(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := cell.Settle(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				anomalies, err := audit.Verify(cell)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
				b.ReportMetric(float64(sim)/float64(b.N)/1e3, "sim-us/op")
				b.ReportMetric(float64(len(anomalies)), "anomalies")
				if posts > 0 {
					b.ReportMetric(float64(fanoutSum)/float64(posts), "fanout/post")
				}
			})
		}
	}
}

// --- E16: core partition scaling ---------------------------------------------------------------------------

// BenchmarkE16_CorePartitionScaling sweeps the deterministic runtime's
// partition count at varying cross-partition transaction ratios — the
// scaling curve the Styx/Calvin line of work leads with. Transfers between
// accounts homed on the same partition ride a single log with zero
// coordination; cross-partition transfers pay one global-sequencer pass.
// The runtime runs over the real durable log (LogDir, fsync per group
// append): the per-record append+fsync cost is exactly what sharding
// overlaps — one partition pays it serially, N partitions pay it N-wide —
// and what concurrent submissions amortize within a partition.
func BenchmarkE16_CorePartitionScaling(b *testing.B) {
	const accounts = 256
	acct := func(a int) string { return fmt.Sprintf("acc/%d", a) }
	for _, parts := range []int{1, 2, 4, 8} {
		for _, crossPct := range []int{0, 10, 50} {
			if parts == 1 && crossPct > 0 {
				continue // a single partition has no cross-partition transactions
			}
			b.Run(fmt.Sprintf("partitions=%d/cross=%d%%", parts, crossPct), func(b *testing.B) {
				rt := core.NewRuntime(mq.NewBroker(), core.Config{
					Name:       fmt.Sprintf("e16-%d-%d-%d", parts, crossPct, b.N),
					Workers:    16,
					Partitions: parts,
					LogDir:     b.TempDir(),
				})
				type transferArgs struct {
					From, To string
					Amount   int64
				}
				rt.Register("transfer", func(tx *core.Tx, args []byte) ([]byte, error) {
					var r transferArgs
					if err := json.Unmarshal(args, &r); err != nil {
						return nil, err
					}
					var fbal, tbal int64
					if raw, _, _ := tx.Get(r.From); raw != nil {
						json.Unmarshal(raw, &fbal)
					}
					if raw, _, _ := tx.Get(r.To); raw != nil {
						json.Unmarshal(raw, &tbal)
					}
					fraw, _ := json.Marshal(fbal - r.Amount)
					traw, _ := json.Marshal(tbal + r.Amount)
					if err := tx.Put(r.From, fraw); err != nil {
						return nil, err
					}
					return nil, tx.Put(r.To, traw)
				})
				if err := rt.Start(); err != nil {
					b.Fatal(err)
				}
				defer rt.Stop()
				// Pre-compute account pairs by home partition: same-partition
				// pairs are the shard-local common case, cross-partition pairs
				// exercise the sequencer.
				byPart := make(map[int][]int)
				for a := 0; a < accounts; a++ {
					p := rt.PartitionOf(acct(a))
					byPart[p] = append(byPart[p], a)
				}
				var same, cross [][2]int
				for _, group := range byPart {
					for i := 0; i+1 < len(group); i += 2 {
						same = append(same, [2]int{group[i], group[i+1]})
					}
				}
				groups := make([][]int, 0, len(byPart))
				for _, g := range byPart {
					groups = append(groups, g)
				}
				for i := 0; len(groups) > 1 && i < accounts/2; i++ {
					ga, gb := groups[i%len(groups)], groups[(i+1)%len(groups)]
					cross = append(cross, [2]int{ga[i%len(ga)], gb[i%len(gb)]})
				}
				if len(same) == 0 {
					b.Fatal("no same-partition account pair")
				}
				var seq atomic.Int64
				// Enough closed-loop clients to keep every partition's
				// pipeline full; throughput is log-bound, not client-bound.
				b.SetParallelism(64)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := seq.Add(1)
						pair := same[int(i)%len(same)]
						if int(i%100) < crossPct && len(cross) > 0 {
							pair = cross[int(i)%len(cross)]
						}
						args, _ := json.Marshal(transferArgs{From: acct(pair[0]), To: acct(pair[1]), Amount: 1})
						if _, err := rt.Submit(fmt.Sprintf("e16-%d", i), "transfer",
							[]string{acct(pair[0]), acct(pair[1])}, args, nil); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
				if n := int64(b.N); n > 0 {
					crossCommits := rt.Metrics().Counter("core.cross_commits").Value()
					b.ReportMetric(100*float64(crossCommits)/float64(n), "cross-%")
				}
			})
		}
	}
}

// --- E20: the concurrency matrix -----------------------------------------------------------------

// BenchmarkE20_ConcurrencyMatrix is the first experiment where the cells'
// concurrency architectures are actually visible: all five cells, driven
// through Sessions by workload.ClosedLoop at clients ∈ {1, 4, 16, 64}, on
// the TPC-C and social mixes. Submission is pipelined (Cell.Submit; the
// session caps in-flight depth), so the matrix separates the two events a
// blocking Invoke conflates — accept-us/op is the time to acknowledgment
// (a pool slot, a durable group append, an ingress produce) and
// apply-us/op the time to application (saga completed, transaction
// committed, choreography's result record landed). The per-cell shapes:
// the synchronous cells scale until Options.Clients saturates their
// blocking protocol (and the 2PL cell starts paying conflicts), the
// deterministic core's group appends amortize the modeled 80µs durable
// append across concurrent submissions — tx/s grows with client count on
// a single log — and the dataflow cell accepts at a flat rate while its
// apply latency absorbs the backlog. The auditors run live inside the
// loop (Record at submission, O(delta) Observe per resolved handle) and
// the final verdict is the precedence graph's: the commutative social mix
// must stay exact on every cell, while TPC-C's stock read-modify-writes
// expose the unisolated cells (sagas, dataflow) as soon as clients > 1 —
// and only as genuine anomalies, since mismatches a legal reorder of
// racing commits explains are suppressed into the reordered count. The
// driver itself is tca.RunConcurrencyCell, shared with cmd/tcabench.
func BenchmarkE20_ConcurrencyMatrix(b *testing.B) {
	for _, mix := range ConcurrencyMixes {
		for _, clients := range []int{1, 4, 16, 64} {
			for _, model := range allModels {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", mix, model, clients), func(b *testing.B) {
					b.ResetTimer()
					res, err := RunConcurrencyCellOpts(mix, model, clients, b.N,
						ConcurrencyOptions{Audit: true, LogDir: os.TempDir(), Seed: 7})
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Throughput(), "tx/s")
					b.ReportMetric(float64(res.AcceptP50)/1e3, "accept-us/op")
					b.ReportMetric(float64(res.ApplyP50)/1e3, "apply-us/op")
					b.ReportMetric(float64(res.AcceptP99)/1e3, "accept-p99-us")
					b.ReportMetric(float64(res.ApplyP99)/1e3, "apply-p99-us")
					b.ReportMetric(float64(res.Rejected), "rejected")
					b.ReportMetric(float64(len(res.Anomalies)), "anomalies")
					b.ReportMetric(float64(res.Violations), "violations")
					b.ReportMetric(float64(res.Reordered), "reordered")
					b.ReportMetric(float64(res.GraphCycles), "graph-cycles")
				})
			}
		}
	}
}

// BenchmarkE21_LiveAuditOverhead prices the online auditing layer: all
// four workload mixes on the two log-based cells (the isolated
// deterministic core and the unisolated dataflow cell), each cell run
// with the incremental auditor live inside the concurrency loop and
// again with auditing off. The audited run pays Record at submission, an
// O(delta) reference replay plus delta constraint maintenance per
// resolved handle, and a bounded live-value sample (at most
// auditLiveKeyCap peeks per commit, only for keys a live constraint
// watches — the social mix samples nothing and should price near zero).
// Compare tx/s against the matching audit=off row for the overhead;
// violations/reordered/graph-cycles report what the auditor caught.
func BenchmarkE21_LiveAuditOverhead(b *testing.B) {
	for _, mix := range AuditedMixes {
		for _, clients := range []int{1, 4, 16, 64} {
			for _, model := range []ProgrammingModel{Deterministic, StatefulDataflow} {
				for _, audited := range []bool{true, false} {
					b.Run(fmt.Sprintf("%s/%s/clients=%d/audit=%v", mix, model, clients, audited), func(b *testing.B) {
						b.ResetTimer()
						res, err := RunConcurrencyCellOpts(mix, model, clients, b.N, ConcurrencyOptions{Audit: audited})
						b.StopTimer()
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(res.Throughput(), "tx/s")
						b.ReportMetric(float64(res.ApplyP50)/1e3, "apply-us/op")
						if audited {
							b.ReportMetric(float64(len(res.Anomalies)), "anomalies")
							b.ReportMetric(float64(res.Violations), "violations")
							b.ReportMetric(float64(res.Reordered), "reordered")
							b.ReportMetric(float64(res.GraphCycles), "graph-cycles")
						}
					})
				}
			}
		}
	}
}

// --- E22: the durability frontier ----------------------------------------------------------------

// e22Policies are the fsync policies the durability frontier sweeps.
var e22Policies = []struct {
	name   string
	policy core.FsyncPolicy
}{
	{"fsync=batch", core.FsyncEveryBatch},
	{"fsync=1ms", core.FsyncInterval},
	{"fsync=none", core.FsyncNone},
}

// BenchmarkE22_DurabilityFrontier maps the real durable log's cost
// surface under the deterministic runtime: group-append batch size
// (Config.MaxGroupAppend) against fsync policy. Concurrent submitters
// share group appends, so larger batches divide the fsync across more
// transactions — the group-commit amortization, now measured on a real
// log instead of modeled by SequenceDelay. fsync=none is the page-cache
// ceiling the other rows are judged against: the acceptance bar is
// fsync-every-batch within 3x of it at batch >= 64. accept-p99-us is the
// 99th-percentile SubmitAsync latency — what "acknowledged means on
// disk" costs the tail.
func BenchmarkE22_DurabilityFrontier(b *testing.B) {
	const accounts = 64
	for _, batch := range []int{1, 8, 64, 256} {
		for _, pol := range e22Policies {
			b.Run(fmt.Sprintf("batch=%d/%s", batch, pol.name), func(b *testing.B) {
				rt := core.NewRuntime(mq.NewBroker(), core.Config{
					Name:           fmt.Sprintf("e22-%d-%s-%d", batch, pol.name, b.N),
					Workers:        16,
					LogDir:         b.TempDir(),
					Fsync:          pol.policy,
					MaxGroupAppend: batch,
				})
				rt.Register("deposit", func(tx *core.Tx, args []byte) ([]byte, error) {
					key := string(args)
					var bal int64
					if raw, _, _ := tx.Get(key); raw != nil {
						json.Unmarshal(raw, &bal)
					}
					raw, _ := json.Marshal(bal + 1)
					return nil, tx.Put(key, raw)
				})
				if err := rt.Start(); err != nil {
					b.Fatal(err)
				}
				defer rt.Stop()
				accept := metrics.NewHistogram()
				var seq atomic.Int64
				// Enough concurrent submitters that the largest group cap can
				// actually fill: group size is bounded by what queues while
				// the previous append's fsync is in flight.
				b.SetParallelism(64)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := seq.Add(1)
						key := fmt.Sprintf("acc/%d", i%accounts)
						t0 := time.Now()
						if _, err := rt.SubmitAsync(fmt.Sprintf("e22-%d", i), "deposit",
							[]string{key}, []byte(key), nil); err != nil {
							b.Error(err)
							return
						}
						accept.RecordDuration(time.Since(t0))
					}
				})
				if err := rt.Quiesce(time.Minute); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
				b.ReportMetric(float64(accept.Snapshot().P99)/1e3, "accept-p99-us")
				appends := rt.Metrics().Counter("core.wal_group_appends").Value()
				if appends > 0 {
					b.ReportMetric(float64(b.N)/float64(appends), "records/append")
				}
			})
		}
	}
}

// --- E23: the overload frontier ------------------------------------------------------------------

// e23Capacity caches each (mix, model) cell's measured closed-loop peak
// so the sweep's rows all offer multiples of the same calibration —
// re-measuring per row would let calibration noise move the x-axis
// between shed=on and shed=off.
var e23Capacity = struct {
	sync.Mutex
	m map[string]float64
}{m: map[string]float64{}}

func e23CapacityFor(b *testing.B, mix string, model ProgrammingModel) float64 {
	e23Capacity.Lock()
	defer e23Capacity.Unlock()
	key := fmt.Sprintf("%s/%s", mix, model)
	if c, ok := e23Capacity.m[key]; ok {
		return c
	}
	c, err := MeasureCellCapacity(mix, model, 400)
	if err != nil {
		b.Fatal(err)
	}
	if c <= 0 {
		b.Fatalf("measured non-positive capacity for %s", key)
	}
	e23Capacity.m[key] = c
	return c
}

// BenchmarkE23_OverloadFrontier maps the open-loop saturation frontier:
// every cell, offered Poisson arrivals at 0.5×–4× its measured
// closed-loop capacity, with admission control on (the default bounded
// queues, excess shed as ErrOverloaded) and off (the legacy unbounded
// queues). The open loop keeps offering regardless of how the cell keeps
// up, so the two configurations diverge exactly at saturation: with
// shedding, goodput holds near the frontier and the accept tail stays
// bounded (rejection is ~constant-time); without it, arrivals queue
// without limit, the accept tail grows with the backlog, and goodput
// collapses as the run's elapsed time stretches to drain work nobody is
// waiting for. shed-% is the admission verdict rate — near zero below
// capacity, climbing toward (1 − 1/mult) past it. The driver is
// tca.RunOverloadCell, shared with cmd/tcabench (e23).
func BenchmarkE23_OverloadFrontier(b *testing.B) {
	for _, mix := range ConcurrencyMixes {
		for _, model := range allModels {
			for _, shedOn := range []bool{true, false} {
				for _, mult := range []float64{0.5, 1, 2, 4} {
					b.Run(fmt.Sprintf("%s/%s/shed=%v/offered=%gx", mix, model, shedOn, mult), func(b *testing.B) {
						capacity := e23CapacityFor(b, mix, model)
						b.ResetTimer()
						res, err := RunOverloadCell(mix, model, capacity*mult, b.N,
							OverloadOptions{Shed: shedOn, LogDir: b.TempDir(), Seed: 7})
						b.StopTimer()
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(res.Goodput(), "goodput/s")
						b.ReportMetric(100*res.ShedFraction(), "shed-%")
						b.ReportMetric(float64(res.AcceptP999)/1e3, "accept-p999-us")
						b.ReportMetric(float64(res.ApplyP999)/1e3, "apply-p999-us")
					})
				}
			}
		}
	}
}

// BenchmarkE24_GeoFrontier maps the geo frontier: the marketplace as a
// replica group, regions {1,2,3} × WAN {20ms, 80ms} × read mode, async
// (eventual cells shipping versioned deltas in the background) vs
// sequenced (the deterministic core behind the WAN-round-tripping global
// sequencer). The reported latencies are modeled (fabric trace) time:
// async local reads hold near the single-region path while the
// staleness probe prices their possible lag; home reads pay the WAN
// round trip, and every sequenced cross-region commit pays at least the
// sequencer's quorum round trip. The driver is tca.RunGeoCell, shared
// with cmd/tcabench (e24).
func BenchmarkE24_GeoFrontier(b *testing.B) {
	for _, mode := range []ReplicationMode{AsyncReplication, SequencedReplication} {
		for _, regions := range []int{1, 2, 3} {
			for _, wan := range []time.Duration{20 * time.Millisecond, 80 * time.Millisecond} {
				if regions == 1 && wan != 20*time.Millisecond {
					continue
				}
				for _, read := range []ReadMode{ReadLocal, ReadHome} {
					if regions == 1 && read != ReadLocal {
						continue
					}
					b.Run(fmt.Sprintf("%v/r=%d/wan=%v/read=%v", mode, regions, wan, read), func(b *testing.B) {
						res, err := RunGeoCell(GeoConfig{
							Mode: mode, Regions: regions, WAN: wan, Read: read,
							Ops: b.N, Seed: 7,
						})
						if err != nil {
							b.Fatal(err)
						}
						if n := len(res.Anomalies); n > 0 {
							b.Fatalf("%d anomalies: %v", n, res.Anomalies[0])
						}
						if !res.Converged {
							b.Fatalf("replicas diverged on %d keys: %v", len(res.Diverged), res.Diverged[0])
						}
						accepted := res.Issued - res.Rejected
						b.ReportMetric(float64(accepted)/res.Elapsed.Seconds(), "tx/s")
						b.ReportMetric(float64(res.ReadP99)/1e3, "read-p99-us")
						b.ReportMetric(float64(res.WriteP99)/1e3, "write-p99-us")
						b.ReportMetric(float64(res.Staleness.MaxLag)/1e6, "max-lag-ms")
						b.ReportMetric(float64(res.Staleness.MaxLagTxns), "lag-txns")
					})
				}
			}
		}
	}
}
