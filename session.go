package tca

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/fabric"
)

// SessionOptions tunes a client session. The zero value is a pipelined
// session with the default in-flight cap and no ordering.
type SessionOptions struct {
	// MaxInFlight caps the session's outstanding (accepted but not yet
	// applied) submissions; Submit blocks when the cap is reached — the
	// client-side pipelining depth. Zero means 32.
	MaxInFlight int
	// OrderKeys serializes the session's ops on overlapping declared key
	// sets: Submit waits for the session's previous op touching any of the
	// same keys to complete before submitting. On the eventual cells this
	// is what buys a session read-your-writes — a read submitted after a
	// write to the same key gathers its snapshot only after the write's
	// choreography finished shipping, so the write is already in the key's
	// partition log. Ops on disjoint keys still pipeline freely. Ordering
	// is per submitting goroutine: concurrent Submit calls racing on the
	// same key are not ordered against each other.
	OrderKeys bool
	// RetryBudget caps the total attempts (the first submission plus
	// retries) for a submission the cell sheds (ErrOverloaded). Between
	// attempts the session backs off exponentially with full jitter,
	// honoring the shed hint's RetryAfter as a floor, and resubmits the
	// same request id — safe, since a shed op never entered the cell.
	// Zero means 8 attempts; negative disables retries (one attempt, shed
	// errors surface to the caller). Non-shed errors never retry.
	RetryBudget int
	// Backoff is the base delay before the first retry; it doubles per
	// attempt (capped at 64× the base) with full jitter. Zero means 200µs.
	Backoff time.Duration
	// Rand draws the retry jitter. Nil means a generator seeded from the
	// session id (FNV-1a), so a rerun with the same session ids draws the
	// identical jitter sequence — what keeps audited overload runs
	// seed-stable end to end (the arrival schedules already are). The
	// session serializes its draws; hand a generator to at most one
	// session and use it nowhere else.
	Rand *rand.Rand
}

// Session is a client of one deployed Cell: it assigns the session's
// request ids, caps how many submissions are in flight, and (optionally)
// orders ops that touch the same keys. Every workload driver in the
// concurrency experiments (E20) holds one Session per simulated client —
// the unit the paper's "millions of users" decompose into.
type Session struct {
	cell Cell
	id   string
	opts SessionOptions

	seq     atomic.Int64
	errs    atomic.Int64
	retries atomic.Int64
	slots   chan struct{}
	wg      sync.WaitGroup

	// rng draws retry jitter under rngMu: retry chains for distinct
	// submissions run concurrently, and *rand.Rand is not safe to share.
	rngMu sync.Mutex
	rng   *rand.Rand

	mu   sync.Mutex
	last map[string]Handle // OrderKeys: latest handle per declared key
}

// NewSession opens a session on cell. id prefixes the session's request
// ids, so distinct sessions submitting the same logical stream never
// collide in the cell's idempotence layer.
func NewSession(cell Cell, id string, opts SessionOptions) *Session {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 32
	}
	if opts.RetryBudget == 0 {
		opts.RetryBudget = 8
	} else if opts.RetryBudget < 0 {
		opts.RetryBudget = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 200 * time.Microsecond
	}
	rng := opts.Rand
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(id))
		rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return &Session{
		cell:  cell,
		id:    id,
		opts:  opts,
		rng:   rng,
		slots: make(chan struct{}, opts.MaxInFlight),
		last:  make(map[string]Handle),
	}
}

// Submit starts the named op with a session-assigned request id and
// returns its Handle. Blocks while the session is at its in-flight cap,
// and — with OrderKeys — until the session's previous ops on overlapping
// keys have completed.
func (s *Session) Submit(opName string, args []byte, tr *fabric.Trace) Handle {
	reqID := fmt.Sprintf("%s/%d", s.id, s.seq.Add(1))
	var keys []string
	if s.opts.OrderKeys {
		if op, ok := s.cell.App().Op(opName); ok {
			keys = s.cell.App().keysOf(op, args)
			s.mu.Lock()
			waits := make([]Handle, 0, len(keys))
			for _, k := range keys {
				if h, ok := s.last[k]; ok {
					waits = append(waits, h)
				}
			}
			s.mu.Unlock()
			for _, h := range waits {
				<-h.Done()
			}
		}
	}
	s.slots <- struct{}{}
	h := s.submitWithRetry(reqID, opName, args, tr)
	if keys != nil {
		// Recorded before the completion watcher starts, so the watcher's
		// cleanup below can never race ahead of the registration.
		s.mu.Lock()
		for _, k := range keys {
			s.last[k] = h
		}
		s.mu.Unlock()
	}
	s.wg.Add(1)
	go func() {
		<-h.Done()
		if _, err := h.Result(); err != nil {
			s.errs.Add(1)
		}
		if keys != nil {
			// A completed handle can never make a later Submit wait —
			// drop it (unless a newer op on the key already replaced it)
			// so s.last tracks in-flight ops, not every key ever touched.
			s.mu.Lock()
			for _, k := range keys {
				if s.last[k] == h {
					delete(s.last, k)
				}
			}
			s.mu.Unlock()
		}
		<-s.slots
		s.wg.Done()
	}()
	return h
}

// submitWithRetry submits once and, when the cell sheds synchronously
// (admission control — the handle resolves before Submit returns),
// retries the same request id under the session's budget with jittered
// exponential backoff. A submission that is genuinely in flight was
// accepted, so an unresolved handle passes through untouched — the hot
// path adds one non-blocking Done check.
func (s *Session) submitWithRetry(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	h := s.cell.Submit(reqID, opName, args, tr)
	retryAfter, shed := sheddedSync(h)
	if !shed || s.opts.RetryBudget <= 1 {
		return h
	}
	out := newOpHandle()
	go func() {
		backoff := s.opts.Backoff
		maxBackoff := 64 * s.opts.Backoff
		for attempt := 2; ; attempt++ {
			s.retries.Add(1)
			time.Sleep(s.retryWait(backoff, retryAfter))
			if backoff < maxBackoff {
				backoff *= 2
			}
			h := s.cell.Submit(reqID, opName, args, tr)
			res, err := h.Result()
			if err == nil || !errors.Is(err, ErrOverloaded) || attempt >= s.opts.RetryBudget {
				out.resolve(res, err)
				return
			}
			var se *ShedError
			if errors.As(err, &se) {
				retryAfter = se.RetryAfter
			}
		}
	}()
	return out
}

// retryWait draws full jitter over the current backoff window from the
// session's seeded generator, floored by the cell's own retry-after
// hint. Seeded (not the global math/rand) so the draw sequence is a
// function of the session id alone — pinned in TestSessionJitterSeeded.
func (s *Session) retryWait(backoff, floor time.Duration) time.Duration {
	s.rngMu.Lock()
	wait := time.Duration(s.rng.Int63n(int64(backoff) + 1))
	s.rngMu.Unlock()
	if wait < floor {
		wait = floor
	}
	return wait
}

// sheddedSync reports whether a just-returned handle already resolved to
// a shed rejection, and the rejection's retry hint.
func sheddedSync(h Handle) (time.Duration, bool) {
	select {
	case <-h.Done():
	default:
		return 0, false
	}
	_, err := h.Result()
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	return 0, false
}

// Invoke is the session's blocking call: Submit(...).Result().
func (s *Session) Invoke(opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return s.Submit(opName, args, tr).Result()
}

// Drain blocks until every submission accepted so far has completed.
func (s *Session) Drain() {
	s.wg.Wait()
}

// Errors returns how many of the session's completed submissions failed.
func (s *Session) Errors() int64 { return s.errs.Load() }

// Retries returns how many shed-retry attempts the session has made
// beyond first submissions.
func (s *Session) Retries() int64 { return s.retries.Load() }

// Submitted returns how many submissions the session has issued.
func (s *Session) Submitted() int64 { return s.seq.Load() }
