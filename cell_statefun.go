package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/fabric"
	"tca/internal/statefun"
)

// statefunCell deploys an App on stateful dataflow functions. Every key's
// state lives in a keyed "key" function; an op runs as a message
// choreography coordinated by a per-request "txn" function:
//
//  1. Invoke appends the op to the ingress (acceptance, not completion);
//  2. the txn function sends a read request to each declared key;
//  3. key functions reply with their current values;
//  4. when the last reply arrives the body runs over the gathered
//     snapshot, and its writes go out as messages — Put as a full value,
//     Add as a commutative delta, PushCap as a bounded-list merge.
//
// Wide transactions chunk: the runtime budgets statefun.MaxSends sends
// per invocation, so both the read-scatter and the write-emit reserve the
// last slot for a SendSelf continuation and resume from the
// continuation's own invocation (cursor and pending writes held in the
// txn function's scoped state, checkpoint-consistent with the messages).
// A compose-post to 128 followers is no longer a hard failure — it is
// ⌈129/31⌉ scatter rounds and ⌈129/31⌉ emit rounds, each exactly-once.
//
// Every message is exactly-once (the statefun runtime's idempotent
// produce), so deltas never double-apply — but the snapshot is gathered
// asynchronously and writes land asynchronously: there is no isolation
// across keys, the §4.2 gap E7/E17 demonstrate. Chunking widens the
// gather window, it does not change the guarantee.
type statefunCell struct {
	app *App
	sf  *statefun.App

	probeSeq atomic.Int64
	mu       sync.Mutex
	probes   map[string]chan sfProbeResp

	// resolvers holds the in-flight Submit handles by reqID, resolved when
	// the choreography's result record lands on the egress. The egress
	// callback is at-least-once, so resolution is remove-then-resolve (and
	// the handle itself resolves idempotently). Its size is the cell's
	// acknowledged-not-yet-applied watermark: maxInflight bounds it
	// (Options.MaxPending; 0 = unbounded), and Submit sheds at the bound —
	// before the ingress produce, so a shed op never enters the dataflow.
	resMu       sync.Mutex
	resolvers   map[string]sfPending
	maxInflight int

	// handlerErrs counts handler invocations that returned an error —
	// the cell's honest drop count, which the conformance tests pin to
	// zero (in particular: statefun.ErrTooManySends must be unreachable
	// now that both choreography phases chunk).
	handlerErrs    atomic.Int64
	lastHandlerErr atomic.Value // sfErrBox
}

// sfErrBox wraps handler errors in one concrete type: atomic.Value
// panics on stores of inconsistently typed values, and handler errors
// legitimately vary in dynamic type.
type sfErrBox struct{ err error }

// sfMsg is the choreography wire format.
type sfMsg struct {
	Kind  string `json:"k"` // "op", "cont", "read", "resp", "flush", "put", "add", "push", "probe"
	Req   string `json:"r,omitempty"`
	Op    string `json:"o,omitempty"`
	Args  []byte `json:"a,omitempty"`
	Key   string `json:"key,omitempty"`
	Val   []byte `json:"v,omitempty"`
	Found bool   `json:"f,omitempty"`
	Delta int64  `json:"d,omitempty"`
	ID    int64  `json:"id,omitempty"`
	Cap   int    `json:"c,omitempty"`
	Probe string `json:"p,omitempty"`
}

type sfProbeResp struct {
	Val   []byte `json:"v"`
	Found bool   `json:"f"`
}

// sfDone is the choreography's result record, emitted on the egress under
// the key "done/<reqID>" when the txn function has run the body and
// shipped the last write chunk. Err carries a body failure — the drop an
// asynchronous cell could never report to its caller before Submit.
type sfDone struct {
	Val []byte `json:"v,omitempty"`
	Err string `json:"e,omitempty"`
}

// sfPending pairs an in-flight handle with its trace (the result hop is
// charged at resolution).
type sfPending struct {
	h  *opHandle
	tr *fabric.Trace
}

// sfDonePrefix keys result records on the egress; sfResultTimeout bounds
// how long a Submit handle waits for its result record. It is a hang
// backstop, not a rejection policy — an accepted op is exactly-once in
// the ingress and will still apply even if its handle times out — so the
// bound is generous (3× Settle's quiesce timeout) to keep a deep
// pipelined backlog on a loaded machine from resolving live handles
// spuriously.
const (
	sfDonePrefix    = "done/"
	sfResultTimeout = 30 * time.Second
)

const (
	sfKeyFn = "key"
	sfTxnFn = "txn"
)

// sfDefaultMaxInflight is the default bound on acknowledged-not-yet-applied
// ingress records (Options.MaxPending == 0). The dataflow cell pipelines
// deeply by design, so its default headroom is wider than the worker-pool
// cells'; what matters is that it is finite — open-loop overload otherwise
// grows the ingress backlog, and every apply latency, without bound.
const sfDefaultMaxInflight = 1024

func newStatefunCell(app *App, env *Env, opts Options) (*statefunCell, error) {
	maxInflight := opts.MaxPending
	if maxInflight == 0 {
		maxInflight = sfDefaultMaxInflight
	} else if maxInflight < 0 {
		maxInflight = 0 // legacy: unbounded ingress
	}
	c := &statefunCell{
		app:         app,
		probes:      make(map[string]chan sfProbeResp),
		resolvers:   make(map[string]sfPending),
		maxInflight: maxInflight,
	}
	sf := statefun.NewApp(env.Broker, statefun.Config{
		Name: "cell-" + app.Name(), Parallelism: 2, Ingress: "cell-" + app.Name() + "-ingress",
		OnEgress: func(key string, value []byte) {
			if req, ok := strings.CutPrefix(key, sfDonePrefix); ok {
				c.resolveDone(req, value)
				return
			}
			var resp sfProbeResp
			if json.Unmarshal(value, &resp) != nil {
				return
			}
			c.mu.Lock()
			ch, ok := c.probes[key]
			if ok {
				delete(c.probes, key)
			}
			c.mu.Unlock()
			if ok {
				select {
				case ch <- resp:
				default:
				}
			}
		},
	})
	sf.Register(sfKeyFn, c.trap(c.keyHandler))
	sf.Register(sfTxnFn, c.trap(c.txnHandler))
	if err := sf.Start(); err != nil {
		return nil, err
	}
	c.sf = sf
	return c, nil
}

// trap wraps a handler to count (and keep) errors: asynchronous cells drop
// failed ops — the honest dataflow failure mode — but the tests assert the
// drop count stays zero on conforming workloads.
func (c *statefunCell) trap(h statefun.Handler) statefun.Handler {
	return func(ctx *statefun.Ctx, payload []byte) error {
		err := h(ctx, payload)
		if err != nil {
			c.handlerErrs.Add(1)
			c.lastHandlerErr.Store(sfErrBox{err})
		}
		return err
	}
}

// handlerErrors returns the number of dropped (errored) handler
// invocations and the most recent error.
func (c *statefunCell) handlerErrors() (int64, error) {
	box, _ := c.lastHandlerErr.Load().(sfErrBox)
	return c.handlerErrs.Load(), box.err
}

// resolveDone completes the in-flight handle whose result record landed.
func (c *statefunCell) resolveDone(reqID string, value []byte) {
	var out sfDone
	if json.Unmarshal(value, &out) != nil {
		return
	}
	c.resMu.Lock()
	p, ok := c.resolvers[reqID]
	if ok {
		delete(c.resolvers, reqID)
	}
	c.resMu.Unlock()
	if !ok {
		return // duplicate delivery or an abandoned (timed-out) handle
	}
	p.tr.Charge(time.Millisecond / 2) // result record -> client
	if out.Err != "" {
		p.h.resolve(nil, fmt.Errorf("tca: statefun op dropped: %s", out.Err))
		return
	}
	p.h.resolve(out.Val, nil)
}

// keyHandler owns one key's state (scoped under the function instance).
func (c *statefunCell) keyHandler(ctx *statefun.Ctx, payload []byte) error {
	var m sfMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		return err
	}
	switch m.Kind {
	case "read":
		val, found := ctx.Get("v")
		reply, _ := json.Marshal(sfMsg{Kind: "resp", Req: m.Req, Key: ctx.Self.ID, Val: val, Found: found})
		return ctx.Send(ctx.Caller, reply)
	case "put":
		ctx.Set("v", m.Val)
	case "add":
		cur, _ := ctx.Get("v")
		ctx.Set("v", EncodeInt(DecodeInt(cur)+m.Delta))
	case "push":
		cur, _ := ctx.Get("v")
		ctx.Set("v", EncodeIntList(mergeBounded(DecodeIntList(cur), m.ID, m.Cap)))
	case "probe":
		val, found := ctx.Get("v")
		out, _ := json.Marshal(sfProbeResp{Val: val, Found: found})
		ctx.SendEgress(m.Probe, out)
	}
	return nil
}

// txnHandler coordinates one op: gathers the declared snapshot (chunked
// across continuation rounds past the send budget), runs the body, and
// emits the writes (chunked the same way). Its scoped state (keyed by the
// reqID) holds the pending op, the scatter cursor, and the un-emitted
// writes between rounds.
func (c *statefunCell) txnHandler(ctx *statefun.Ctx, payload []byte) error {
	var m sfMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		return err
	}
	switch m.Kind {
	case "op":
		op, ok := c.app.Op(m.Op)
		if !ok {
			return opError(c.app, m.Op)
		}
		keys := c.app.keysOf(op, m.Args)
		if len(keys) == 0 {
			return c.runBody(ctx, op, m.Args, nil)
		}
		ctx.Set("op", payload)
		ctx.Set("want", EncodeInt(int64(len(keys))))
		ctx.Set("got", EncodeInt(0))
		return c.scatterReads(ctx, keys, 0)
	case "cont":
		// Continuation of the read scatter: recompute the declared key
		// set from the stored op and resume from the cursor.
		opRaw, ok := ctx.Get("op")
		if !ok {
			return nil // already completed (replayed continuation)
		}
		var pending sfMsg
		if err := json.Unmarshal(opRaw, &pending); err != nil {
			return err
		}
		op, okOp := c.app.Op(pending.Op)
		if !okOp {
			return opError(c.app, pending.Op)
		}
		cursorRaw, _ := ctx.Get("next")
		return c.scatterReads(ctx, c.app.keysOf(op, pending.Args), int(DecodeInt(cursorRaw)))
	case "resp":
		if m.Found {
			ctx.Set("val/"+m.Key, m.Val)
		}
		raw, _ := ctx.Get("got")
		got := DecodeInt(raw) + 1
		ctx.Set("got", EncodeInt(got))
		wantRaw, ok := ctx.Get("want")
		if !ok || got < DecodeInt(wantRaw) {
			return nil
		}
		opRaw, ok := ctx.Get("op")
		if !ok {
			return nil
		}
		var pending sfMsg
		if err := json.Unmarshal(opRaw, &pending); err != nil {
			return err
		}
		op, okOp := c.app.Op(pending.Op)
		if !okOp {
			return opError(c.app, pending.Op)
		}
		snapshot := make(map[string][]byte)
		for _, k := range c.app.keysOf(op, pending.Args) {
			if v, found := ctx.Get("val/" + k); found {
				snapshot[k] = v
			}
			ctx.Del("val/" + k)
		}
		ctx.Del("op")
		ctx.Del("want")
		ctx.Del("got")
		ctx.Del("next")
		return c.runBody(ctx, op, pending.Args, snapshot)
	case "flush":
		// Continuation of the write emit: ship the next chunk of the
		// writes stored by the previous round.
		pendRaw, ok := ctx.Get("pend")
		if !ok {
			return nil // already flushed (replayed continuation)
		}
		var writes []sfWrite
		if err := json.Unmarshal(pendRaw, &writes); err != nil {
			return err
		}
		return c.emitWrites(ctx, writes)
	}
	return nil
}

// scatterReads sends read requests for keys[from:], reserving the last
// send slot for a SendSelf continuation when the remainder exceeds the
// invocation's budget. The cursor persists in scoped state so the
// continuation round resumes where this one stopped.
func (c *statefunCell) scatterReads(ctx *statefun.Ctx, keys []string, from int) error {
	n := len(keys) - from
	budget := ctx.SendsRemaining()
	chunked := n > budget
	if chunked {
		n = budget - 1
	}
	for _, k := range keys[from : from+n] {
		req, _ := json.Marshal(sfMsg{Kind: "read", Req: ctx.Self.ID, Key: k})
		if err := ctx.Send(statefun.Ref{Type: sfKeyFn, ID: k}, req); err != nil {
			return err
		}
	}
	if !chunked {
		return nil
	}
	ctx.Set("next", EncodeInt(int64(from+n)))
	cont, _ := json.Marshal(sfMsg{Kind: "cont"})
	return ctx.SendSelf(cont)
}

// emitWrites ships writes to the key functions, reserving the last send
// slot for a SendSelf continuation when the remainder exceeds the
// invocation's budget; the tail persists in scoped state until the flush
// round picks it up.
func (c *statefunCell) emitWrites(ctx *statefun.Ctx, writes []sfWrite) error {
	n := len(writes)
	budget := ctx.SendsRemaining()
	chunked := n > budget
	if chunked {
		n = budget - 1
	}
	for _, w := range writes[:n] {
		var msg []byte
		switch {
		case w.Set:
			msg, _ = json.Marshal(sfMsg{Kind: "put", Key: w.Key, Val: w.Val})
		case w.Push:
			msg, _ = json.Marshal(sfMsg{Kind: "push", Key: w.Key, ID: w.ID, Cap: w.Cap})
		default:
			msg, _ = json.Marshal(sfMsg{Kind: "add", Key: w.Key, Delta: w.Delta})
		}
		if err := ctx.Send(statefun.Ref{Type: sfKeyFn, ID: w.Key}, msg); err != nil {
			return err
		}
	}
	if !chunked {
		// Final round: every write is in its key's partition log (the sends
		// above are exactly-once produces), so the result record emitted
		// here orders after them — a read submitted once the handle
		// resolves gathers a snapshot that includes this op's writes.
		ctx.Del("pend")
		res, _ := ctx.Get("res")
		ctx.Del("res")
		c.sendDone(ctx, res, nil)
		return nil
	}
	rest, err := json.Marshal(writes[n:])
	if err != nil {
		return err
	}
	ctx.Set("pend", rest)
	cont, _ := json.Marshal(sfMsg{Kind: "flush"})
	return ctx.SendSelf(cont)
}

// runBody executes the body over the gathered snapshot and sends its
// writes to the key functions. Body errors drop the op — the honest
// dataflow failure mode — but the result record carries the error, so a
// Submit handle (unlike the fire-and-forget ingress append of old) learns
// about the drop.
func (c *statefunCell) runBody(ctx *statefun.Ctx, op Op, args []byte, snapshot map[string][]byte) error {
	tx := &sfTxn{snapshot: snapshot}
	result, err := op.Body(op.guard(tx), args)
	if err != nil {
		c.sendDone(ctx, nil, err)
		return nil
	}
	if op.ReadOnly {
		// A query is answered by the read-gather phase itself: the body ran
		// over the gathered snapshot and there is no write-emit round —
		// half the choreography's messages, and the key functions never
		// see the op. The result record is the answer.
		c.sendDone(ctx, result, nil)
		return nil
	}
	// The result rides in scoped state until the last write chunk ships:
	// a chunked emit finishes in a later "flush" invocation, and the
	// result record must order after every write.
	ctx.Set("res", result)
	return c.emitWrites(ctx, tx.writes)
}

// sendDone emits the choreography's result record on the egress. The txn
// function instance is keyed by the reqID, so Self.ID addresses the
// in-flight handle.
func (c *statefunCell) sendDone(ctx *statefun.Ctx, val []byte, err error) {
	out := sfDone{Val: val}
	if err != nil {
		out.Err = err.Error()
	}
	raw, _ := json.Marshal(out)
	ctx.SendEgress(sfDonePrefix+ctx.Self.ID, raw)
}

// sfTxn runs a body over the choreography's gathered snapshot. Writes are
// buffered and shipped as messages after the body succeeds; Gets overlay
// the op's own writes on the snapshot.
type sfTxn struct {
	snapshot map[string][]byte
	writes   []sfWrite
}

// sfWrite is one buffered write; fields are exported because the write
// tail of a chunked emit round persists JSON-encoded in the txn
// function's scoped state between invocations.
type sfWrite struct {
	Key   string `json:"k"`
	Set   bool   `json:"s,omitempty"`
	Val   []byte `json:"v,omitempty"`
	Delta int64  `json:"d,omitempty"`
	Push  bool   `json:"p,omitempty"`
	ID    int64  `json:"id,omitempty"`
	Cap   int    `json:"c,omitempty"`
}

func (t *sfTxn) Get(key string) ([]byte, bool, error) {
	raw, found := t.snapshot[key]
	for _, w := range t.writes {
		if w.Key != key {
			continue
		}
		switch {
		case w.Set:
			raw, found = w.Val, true
		case w.Push:
			raw, found = EncodeIntList(mergeBounded(DecodeIntList(raw), w.ID, w.Cap)), true
		default:
			raw, found = EncodeInt(DecodeInt(raw)+w.Delta), true
		}
	}
	return raw, found, nil
}

func (t *sfTxn) Put(key string, value []byte) error {
	t.writes = append(t.writes, sfWrite{Key: key, Set: true, Val: value})
	return nil
}

func (t *sfTxn) Add(key string, delta int64) error {
	t.writes = append(t.writes, sfWrite{Key: key, Delta: delta})
	return nil
}

func (t *sfTxn) PushCap(key string, id int64, cap int) error {
	t.writes = append(t.writes, sfWrite{Key: key, Push: true, ID: id, Cap: cap})
	return nil
}

func (c *statefunCell) Model() ProgrammingModel { return StatefulDataflow }
func (c *statefunCell) App() *App               { return c.app }

func (c *statefunCell) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: false, ExactlyOnce: true,
		Note: "exactly-once processing; NO isolation across functions (§4.2) — ops settle eventually"}
}

// Submit appends the op to the ingress — acceptance, one produce hop —
// and the handle resolves when the choreography's result record lands on
// the egress: the body ran over its gathered snapshot and the final write
// chunk is durably in the key functions' partition logs. That is the
// cell's honest accept/apply gap, now visible as two latency numbers per
// request (E20). Per-key settlement of the writes still needs Settle;
// the guarantee is unchanged.
func (c *statefunCell) Submit(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	if _, ok := c.app.Op(opName); !ok {
		return resolvedHandle(nil, opError(c.app, opName))
	}
	h := newOpHandle()
	c.resMu.Lock()
	if prev, dup := c.resolvers[reqID]; dup {
		// A retry of an in-flight request joins it instead of stranding
		// the first handle: one choreography, one result record, every
		// caller resolved by it. (Retries of *completed* requests
		// re-execute — the cell has no result cache; its idempotence is
		// per message, not per request, which Guarantee reports.) The
		// retry's own produce hop is charged here; the result hop lands
		// on the first caller's trace, where the result record resolves.
		c.resMu.Unlock()
		tr.Charge(time.Millisecond / 2)
		return prev.h
	}
	if c.maxInflight > 0 && len(c.resolvers) >= c.maxInflight {
		// The acknowledged-not-yet-applied watermark is at its bound:
		// shed before the ingress produce, so the op never enters the
		// dataflow — nothing to un-apply, nothing for the auditor.
		depth := len(c.resolvers)
		c.resMu.Unlock()
		return shedHandle(StatefulDataflow, depth, time.Millisecond)
	}
	c.resolvers[reqID] = sfPending{h: h, tr: tr}
	c.resMu.Unlock()
	payload, _ := json.Marshal(sfMsg{Kind: "op", Req: reqID, Op: opName, Args: args})
	tr.Charge(time.Millisecond / 2) // acceptance: one produce hop
	if err := c.sf.SendToIngress(statefun.Ref{Type: sfTxnFn, ID: reqID}, payload); err != nil {
		c.resMu.Lock()
		delete(c.resolvers, reqID)
		c.resMu.Unlock()
		h.resolve(nil, err)
		return h
	}
	// Watchdog: a result record that never lands (the cell stopped, a
	// poison payload) must not hang the handle forever.
	go func() {
		timer := time.NewTimer(sfResultTimeout)
		defer timer.Stop()
		select {
		case <-h.done:
		case <-timer.C:
			c.resMu.Lock()
			delete(c.resolvers, reqID)
			c.resMu.Unlock()
			h.resolve(nil, errors.New("tca: statefun result timeout"))
		}
	}()
	return h
}

func (c *statefunCell) Invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return c.Submit(reqID, opName, args, tr).Result()
}

// Read settles, then probes the key function's scoped state through the
// egress.
func (c *statefunCell) Read(key string) ([]byte, bool, error) {
	if err := c.Settle(); err != nil {
		return nil, false, err
	}
	return c.Peek(key)
}

// Peek reads a key without settling — the dirty read an external observer
// performs mid-flight (experiment E7).
func (c *statefunCell) Peek(key string) ([]byte, bool, error) {
	probe := fmt.Sprintf("probe-%d", c.probeSeq.Add(1))
	ch := make(chan sfProbeResp, 1)
	c.mu.Lock()
	c.probes[probe] = ch
	c.mu.Unlock()
	msg, _ := json.Marshal(sfMsg{Kind: "probe", Probe: probe})
	if err := c.sf.SendToIngress(statefun.Ref{Type: sfKeyFn, ID: key}, msg); err != nil {
		return nil, false, err
	}
	select {
	case resp := <-ch:
		return resp.Val, resp.Found, nil
	case <-time.After(5 * time.Second):
		return nil, false, errors.New("tca: statefun read probe timeout")
	}
}

func (c *statefunCell) Settle() error { return c.sf.WaitIdle(10 * time.Second) }
func (c *statefunCell) Close()        { c.sf.Stop() }

// StatefunRuntime returns the eventual cell's underlying statefun app —
// the checkpoint and crash/recover control surface — or nil for any
// other cell, the dataflow counterpart of CoreRuntime.
func StatefunRuntime(c Cell) *statefun.App {
	if sc, ok := c.(*statefunCell); ok {
		return sc.sf
	}
	return nil
}
