package tca

import (
	"tca/internal/faas"
	"tca/internal/fabric"
	"tca/internal/store"
)

// faasCell deploys an App on the FaaS platform with durable entities:
// every op becomes a registered function, every key a durable entity, and
// each invocation opens an explicit critical section over the op's
// declared key set (locks acquired in canonical order — deadlock-free, as
// Durable Functions requires entities to be declared up front). Writes are
// buffered and flushed only when the body succeeds, so a business failure
// leaves no partial state. Invocation ids give exactly-once per op.
type faasCell struct {
	app  *App
	p    *faas.Platform
	pool *submitPool
}

func newFaasCell(app *App, env *Env, opts Options) *faasCell {
	c := &faasCell{app: app, p: faas.NewPlatform(env.Cluster, faas.DefaultConfig()), pool: newSubmitPool(CloudFunctions, opts.Clients, opts.MaxPending)}
	for _, name := range app.Ops() {
		op, _ := app.Op(name)
		c.p.Register(op.Name, func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			keys := app.keysOf(op, payload)
			ids := make([]faas.EntityID, len(keys))
			for i, k := range keys {
				ids[i] = c.entity(k)
			}
			cs := c.p.Entities().Lock(ids...)
			defer cs.Unlock()
			ftx := &faasTxn{cell: c, cs: cs, writes: make(map[string][]byte)}
			result, err := op.Body(op.guard(ftx), payload)
			if err != nil {
				return nil, err // buffered writes dropped: all-or-nothing
			}
			if op.ReadOnly {
				// Queries read the locked entities and return: the
				// buffered-write commit loop never runs.
				return result, nil
			}
			for _, k := range sortedKeys(ftx.writes) {
				value := ftx.writes[k]
				if err := cs.Update(c.entity(k), func(store.Row) (store.Row, error) {
					return store.Row{"v": string(value)}, nil
				}); err != nil {
					return nil, err
				}
			}
			return result, nil
		})
	}
	return c
}

func (c *faasCell) entity(key string) faas.EntityID {
	return faas.EntityID{Type: c.app.Name(), ID: key}
}

// faasTxn buffers writes inside the critical section; reads see the locked
// entities overlaid with the op's own writes.
type faasTxn struct {
	cell   *faasCell
	cs     *faas.CriticalSection
	writes map[string][]byte
}

func (t *faasTxn) Get(key string) ([]byte, bool, error) {
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	row, ok, err := t.cs.Get(t.cell.entity(key))
	if err != nil || !ok {
		return nil, false, err // undeclared keys surface ErrNotInCriticalSection
	}
	return []byte(row.Str("v")), true, nil
}

func (t *faasTxn) Put(key string, value []byte) error {
	t.writes[key] = value
	return nil
}

func (t *faasTxn) Add(key string, delta int64) error {
	raw, _, err := t.Get(key)
	if err != nil {
		return err
	}
	return t.Put(key, EncodeInt(DecodeInt(raw)+delta))
}

// PushCap is a plain read-modify-write here: the critical section holds
// the entity lock, so concurrent merges serialize.
func (t *faasTxn) PushCap(key string, id int64, cap int) error {
	return pushCapRMW(t, key, id, cap)
}

func (c *faasCell) Model() ProgrammingModel { return CloudFunctions }
func (c *faasCell) App() *App               { return c.app }

func (c *faasCell) Guarantee() Guarantee {
	return Guarantee{Atomic: true, Isolated: true, ExactlyOnce: true,
		Note: "Durable-Functions entities: explicit critical sections, dedup by op id; cold starts on the latency tail"}
}

// Submit runs the function invocation on the cell's bounded worker pool:
// the platform's invocation path is synchronous (acquire the critical
// section, run, commit buffered writes), so pipelining is client-side
// concurrency — concurrent submissions on overlapping entities serialize
// on the entity locks, which is the cell's honest contention behavior.
func (c *faasCell) Submit(reqID, opName string, args []byte, tr *fabric.Trace) Handle {
	return c.pool.submit(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

// Invoke is semantically Submit(...).Result() — TestInvokeIsSubmitResult
// pins the equivalence — taking the pool's inline fast path for blocking
// callers.
func (c *faasCell) Invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	return c.pool.invoke(func() ([]byte, error) {
		return c.invoke(reqID, opName, args, tr)
	})
}

func (c *faasCell) invoke(reqID, opName string, args []byte, tr *fabric.Trace) ([]byte, error) {
	op, ok := c.app.Op(opName)
	if !ok {
		return nil, opError(c.app, opName)
	}
	// Route by the first declared key (platform placement only).
	routing := reqID
	if keys := c.app.keysOf(op, args); len(keys) > 0 {
		routing = keys[0]
	}
	return c.p.InvokeID(reqID, op.Name, routing, args, tr)
}

func (c *faasCell) Read(key string) ([]byte, bool, error) {
	row, ok, err := c.p.Entities().Read(c.entity(key))
	if err != nil || !ok {
		return nil, false, err
	}
	return []byte(row.Str("v")), true, nil
}

func (c *faasCell) Settle() error { return nil }
func (c *faasCell) Close()        { c.p.Stop() }
