package tca

import (
	"encoding/json"
	"fmt"

	"tca/internal/workload"
)

// The trip-booking saga from examples/booking promoted to a first-class
// App (ISSUE 10 satellite): a reservation books one flight seat and one
// hotel room and records the trip on the user's ledger — the multi-key
// atomic step the example drove through a hand-rolled saga orchestrator,
// now deployable under all five programming models. A cancellation
// releases exactly what its reservation took (the workload generator
// cancels only trips it booked, so counts never legitimately go
// negative); query-trip is the ReadOnly path. Every mutation is a ±1
// counter delta — fully commutative — so every cell must audit clean:
// like the social mix, this measures the cost of the multi-service
// atomic step, not anomaly tolerance.
//
// State encoding (all values EncodeInt int64):
//
//	flight/F  seats sold on flight F
//	hotel/H   rooms sold at hotel H
//	trip/U    trips currently held by user U

// bookingQueryResult is query-trip's wire result.
type bookingQueryResult struct {
	Trips int64 `json:"trips"`
}

// BookingApp builds the trip-booking App. Op arguments are JSON-encoded
// workload.BookingOp descriptors.
func BookingApp() *App {
	app := NewApp("booking")
	keys := func(args []byte) []string {
		var op workload.BookingOp
		json.Unmarshal(args, &op)
		return op.Keys()
	}
	app.Register(Op{Name: workload.BookingReserve.String(), Keys: keys, Body: bookingReserve})
	app.Register(Op{Name: workload.BookingCancel.String(), Keys: keys, Body: bookingCancel})
	app.Register(Op{Name: workload.BookingQuery.String(), Keys: keys, ReadOnly: true, Body: bookingQuery})
	return app
}

// bookingOpName maps a generated op to its registered op name.
func bookingOpName(op workload.BookingOp) string { return op.Kind.String() }

// bookingReserve books the trip: one seat, one room, one ledger entry,
// atomically under whatever mechanism the cell provides.
func bookingReserve(tx Txn, args []byte) ([]byte, error) {
	var op workload.BookingOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.FlightKey(op.Flight), 1); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.HotelKey(op.Hotel), 1); err != nil {
		return nil, err
	}
	return nil, tx.Add(workload.TripKey(op.User), 1)
}

// bookingCancel releases a previously booked trip — the compensation the
// example's saga ran, as a first-class inverse op.
func bookingCancel(tx Txn, args []byte) ([]byte, error) {
	var op workload.BookingOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.FlightKey(op.Flight), -1); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.HotelKey(op.Hotel), -1); err != nil {
		return nil, err
	}
	return nil, tx.Add(workload.TripKey(op.User), -1)
}

// bookingQuery reads the user's trip count.
func bookingQuery(tx Txn, args []byte) ([]byte, error) {
	var op workload.BookingOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	raw, _, err := tx.Get(workload.TripKey(op.User))
	if err != nil {
		return nil, err
	}
	out, _ := json.Marshal(bookingQueryResult{Trips: DecodeInt(raw)})
	return out, nil
}

// BookingAuditor audits the booking mix on the shared engine: every
// seat, room, and trip counter must equal the delta-maintained
// expectation from the accepted ops (the mix commutes, so any divergence
// is a lost or doubled booking), and no counter may settle negative — a
// cancellation that applied without its reservation.
type BookingAuditor struct {
	*refAuditor
}

// NewBookingAuditor creates an empty auditor.
func NewBookingAuditor() *BookingAuditor {
	cons := NewConstraints().
		Check(NonNegative("negative booking count", "flight/", false)).
		Check(NonNegative("negative booking count", "hotel/", false)).
		KeyTotal(KeyTotal{
			Name: "booking counters",
			Delta: func(op string, args []byte) map[string]int64 {
				var b workload.BookingOp
				if json.Unmarshal(args, &b) != nil {
					return nil
				}
				var d int64
				switch op {
				case workload.BookingReserve.String():
					d = 1
				case workload.BookingCancel.String():
					d = -1
				default:
					return nil
				}
				return map[string]int64{
					workload.FlightKey(b.Flight): d,
					workload.HotelKey(b.Hotel):   d,
					workload.TripKey(b.User):     d,
				}
			},
			Describe: func(key string, got, want int64) string {
				return fmt.Sprintf("%s: %d booked, expected %d (lost or doubled booking)", key, got, want)
			},
		})
	return &BookingAuditor{newRefAuditor(auditorConfig{
		app:  BookingApp(),
		cons: cons,
	})}
}

// RecordOp folds one accepted op into the reference in serial order.
// Queries are no-ops by construction and skipped.
func (a *BookingAuditor) RecordOp(op workload.BookingOp) {
	if op.Kind == workload.BookingQuery {
		return
	}
	args, _ := json.Marshal(op)
	a.ObserveSerial(bookingOpName(op), args)
}
