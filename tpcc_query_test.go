package tca

import (
	"encoding/json"
	"fmt"
	"testing"

	"tca/internal/workload"
)

// Cross-cell tests for the TPC-C query transactions (OrderStatus and
// StockLevel, declared ReadOnly): on every cell they must leave all state
// untouched and — on the synchronous cells, which return results — agree
// with the same query run against the serial reference.

// tpccQuerySeed drives a short seeded NewOrder/Payment prefix, serialized
// per op on the eventual cell so the reference matches exactly.
func tpccQuerySeed(t *testing.T, cell Cell) *TPCCAuditor {
	t.Helper()
	cfg := workload.TPCCConfig{Warehouses: 2, Districts: 2, Customers: 10, Items: 40, NewOrderFrac: 0.55}
	gen := workload.NewTPCC(33, cfg)
	audit := NewTPCCAuditor()
	for i := 0; i < 60; i++ {
		op := gen.Next()
		args, _ := json.Marshal(op)
		if _, err := cell.Invoke(fmt.Sprintf("qseed-%d", i), tpccOpName(op), args, nil); err != nil {
			t.Fatalf("seed op %d (%s): %v", i, tpccOpName(op), err)
		}
		audit.RecordOp(op)
		if cell.Model() == StatefulDataflow {
			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cell.Settle(); err != nil {
		t.Fatal(err)
	}
	return audit
}

func TestTPCCQueriesCrossCell(t *testing.T) {
	orderStatus := workload.TPCCOp{
		Kind: workload.TPCCOrderStatus, Warehouse: 0, District: 1, Customer: 3,
	}
	stockLevel := workload.TPCCOp{
		Kind: workload.TPCCStockLevel, Warehouse: 1, District: 0, Threshold: 60,
		Items: []workload.TPCCItem{{ItemID: 1}, {ItemID: 7}, {ItemID: 13}, {ItemID: 21}, {ItemID: 33}},
	}
	queries := []workload.TPCCOp{orderStatus, stockLevel}
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			env := NewEnv(61, 3)
			cell, err := Deploy(model, TPCCApp(), env)
			if err != nil {
				t.Fatal(err)
			}
			defer cell.Close()
			audit := tpccQuerySeed(t, cell)

			// Snapshot every key the queries declare, before and after.
			var auditKeys []string
			for _, q := range queries {
				auditKeys = append(auditKeys, q.Keys()...)
			}
			before := readAll(t, cell, auditKeys)

			for qi, q := range queries {
				args, _ := json.Marshal(q)
				res, err := cell.Invoke(fmt.Sprintf("tq-%d", qi), tpccOpName(q), args, nil)
				if err != nil {
					t.Fatalf("%s: %v", tpccOpName(q), err)
				}
				// Synchronous cells return the result; it must equal the
				// same body run on the serial reference state.
				if model == StatefulDataflow {
					continue
				}
				registered, _ := TPCCApp().Op(tpccOpName(q))
				want, err := registered.Body(audit.state, args)
				if err != nil {
					t.Fatal(err)
				}
				if string(res) != string(want) {
					t.Errorf("%s = %s, serial reference %s", tpccOpName(q), res, want)
				}
			}

			if err := cell.Settle(); err != nil {
				t.Fatal(err)
			}
			after := readAll(t, cell, auditKeys)
			for _, k := range auditKeys {
				if before[k] != after[k] {
					t.Errorf("%s: %d -> %d after read-only TPC-C queries", k, before[k], after[k])
				}
			}
			// And the full integrity audit still holds — the queries did
			// not perturb the write history.
			anomalies, err := audit.Verify(cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range anomalies {
				t.Errorf("post-query anomaly: %s", a)
			}
		})
	}
}

// TestTPCCQueryResultsAgainstKnownState pins the two query bodies on a
// hand-built state: the results are computed, not echoed.
func TestTPCCQueryResultsAgainstKnownState(t *testing.T) {
	state := make(mapTxn)
	state[workload.CustomerKey(0, 0, 1)] = EncodeInt(-230)
	state[workload.DistrictKey(0, 0)] = EncodeInt(7)
	state[workload.StockKey(0, 3)] = EncodeInt(4)
	state[workload.StockKey(0, 4)] = EncodeInt(40)

	app := TPCCApp()
	osOp, _ := app.Op(workload.TPCCOrderStatus.String())
	args, _ := json.Marshal(workload.TPCCOp{Kind: workload.TPCCOrderStatus, Customer: 1})
	res, err := osOp.Body(osOp.guard(state), args)
	if err != nil {
		t.Fatal(err)
	}
	var osRes tpccOrderStatusResult
	if err := json.Unmarshal(res, &osRes); err != nil {
		t.Fatal(err)
	}
	if osRes.Balance != -230 || osRes.Orders != 7 {
		t.Fatalf("order-status = %+v, want balance -230 orders 7", osRes)
	}

	slOp, _ := app.Op(workload.TPCCStockLevel.String())
	// Items 3 (stock 4, low), 4 (stock 40, not low), 9 (untouched ->
	// tpccInitialStock, not low); default threshold.
	args, _ = json.Marshal(workload.TPCCOp{
		Kind:  workload.TPCCStockLevel,
		Items: []workload.TPCCItem{{ItemID: 3}, {ItemID: 4}, {ItemID: 9}},
	})
	res, err = slOp.Body(slOp.guard(state), args)
	if err != nil {
		t.Fatal(err)
	}
	var slRes tpccStockLevelResult
	if err := json.Unmarshal(res, &slRes); err != nil {
		t.Fatal(err)
	}
	if slRes.Low != 1 || slRes.Scanned != 3 {
		t.Fatalf("stock-level = %+v, want low 1 scanned 3", slRes)
	}
}
