package tca

import (
	"encoding/json"
	"fmt"

	"tca/internal/workload"
)

// TPC-C (the NewOrder/Payment subset of internal/workload) as a
// first-class App: the same seeded op stream runs under all five
// programming models, and TPCCAuditor checks the classic
// integrity-constraint story across them — stock never negative,
// warehouse YTD equal to the sum of payments, district order counters
// equal to the number of NewOrders.
//
// State encoding (all values EncodeInt int64):
//
//	wh/W        warehouse year-to-date payment total (starts 0)
//	dist/W/D    orders issued in the district (starts 0; next_o_id - 1)
//	cust/W/D/C  customer balance (starts 0, payments subtract)
//	stock/W/I   stock level (starts at tpccInitialStock on first touch)
//
// Counters are written with commutative Adds, so they stay exact even on
// the eventual cells; stock is an honest read-modify-write (the restock
// decision depends on the read), which is exactly where cells without
// isolation drift — the anomaly E17 reports.

// tpccInitialStock is the stock level of an untouched item, and
// tpccRestock the replenishment the standard prescribes when a NewOrder
// would leave fewer than tpccRestockFloor units. tpccStockLevelThreshold
// is StockLevel's default low-stock cutoff (the standard draws 10..20
// uniformly; descriptors may pin their own via TPCCOp.Threshold).
const (
	tpccInitialStock        = 100
	tpccRestock             = 91
	tpccRestockFloor        = 10
	tpccStockLevelThreshold = 15
)

// TPCCApp builds the TPC-C subset as a model-agnostic App. Op arguments
// are JSON-encoded workload.TPCCOp descriptors, so any workload.TPCCGen
// stream drives any cell.
func TPCCApp() *App {
	app := NewApp("tpcc")
	keys := func(args []byte) []string {
		var op workload.TPCCOp
		json.Unmarshal(args, &op)
		return op.Keys()
	}
	app.Register(Op{Name: workload.TPCCNewOrder.String(), Keys: keys, Body: tpccNewOrder})
	app.Register(Op{Name: workload.TPCCPayment.String(), Keys: keys, Body: tpccPayment})
	app.Register(Op{Name: workload.TPCCOrderStatus.String(), Keys: keys, ReadOnly: true, Body: tpccOrderStatus})
	app.Register(Op{Name: workload.TPCCStockLevel.String(), Keys: keys, ReadOnly: true, Body: tpccStockLevel})
	return app
}

// tpccOrderStatusResult is order-status's wire result.
type tpccOrderStatusResult struct {
	Balance int64 `json:"balance"`
	Orders  int64 `json:"orders"`
}

// tpccStockLevelResult is stock-level's wire result.
type tpccStockLevelResult struct {
	Low     int64 `json:"low"`
	Scanned int64 `json:"scanned"`
}

// tpccOpName maps a generated op to its registered op name.
func tpccOpName(op workload.TPCCOp) string { return op.Kind.String() }

// tpccNewOrder issues one order: bump the district's order counter and
// draw down stock for every line, restocking when a line would leave the
// shelf below the floor.
func tpccNewOrder(tx Txn, args []byte) ([]byte, error) {
	var op workload.TPCCOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.DistrictKey(op.Warehouse, op.District), 1); err != nil {
		return nil, err
	}
	sw := op.Warehouse
	if op.Remote {
		sw = op.RemoteWarehouse
	}
	// Aggregate duplicate items so each stock key gets one read and one
	// write (the declared key set is deduplicated the same way).
	qty := make(map[string]int64)
	var order []string
	for _, it := range op.Items {
		k := workload.StockKey(sw, it.ItemID)
		if _, seen := qty[k]; !seen {
			order = append(order, k)
		}
		qty[k] += int64(it.Qty)
	}
	for _, k := range order {
		raw, found, err := tx.Get(k)
		if err != nil {
			return nil, err
		}
		s := int64(tpccInitialStock)
		if found {
			s = DecodeInt(raw)
		}
		for s-qty[k] < tpccRestockFloor {
			s += tpccRestock
		}
		s -= qty[k]
		if err := tx.Put(k, EncodeInt(s)); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// tpccPayment applies one payment: warehouse YTD up, customer balance
// down — pure commutative deltas, so every cell keeps them exact.
func tpccPayment(tx Txn, args []byte) ([]byte, error) {
	var op workload.TPCCOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	if err := tx.Add(workload.WarehouseKey(op.Warehouse), op.Amount); err != nil {
		return nil, err
	}
	cw := op.Warehouse
	if op.Remote {
		cw = op.RemoteWarehouse
	}
	return nil, tx.Add(workload.CustomerKey(cw, op.District, op.Customer), -op.Amount)
}

// tpccOrderStatus answers the standard's OrderStatus query from the
// customer's balance and the district's order counter — a pure read over
// its two declared keys, which every cell serves on its query fast path.
func tpccOrderStatus(tx Txn, args []byte) ([]byte, error) {
	var op workload.TPCCOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	balRaw, _, err := tx.Get(workload.CustomerKey(op.Warehouse, op.District, op.Customer))
	if err != nil {
		return nil, err
	}
	ordRaw, _, err := tx.Get(workload.DistrictKey(op.Warehouse, op.District))
	if err != nil {
		return nil, err
	}
	return json.Marshal(tpccOrderStatusResult{Balance: DecodeInt(balRaw), Orders: DecodeInt(ordRaw)})
}

// tpccStockLevel answers the standard's StockLevel query: how many of the
// inspected items sit below the threshold. Untouched stock keys read as
// tpccInitialStock, mirroring tpccNewOrder's implicit initialization.
func tpccStockLevel(tx Txn, args []byte) ([]byte, error) {
	var op workload.TPCCOp
	if err := json.Unmarshal(args, &op); err != nil {
		return nil, err
	}
	threshold := op.Threshold
	if threshold == 0 {
		threshold = tpccStockLevelThreshold
	}
	var res tpccStockLevelResult
	seen := map[string]struct{}{}
	for _, it := range op.Items {
		k := workload.StockKey(op.Warehouse, it.ItemID)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		raw, found, err := tx.Get(k)
		if err != nil {
			return nil, err
		}
		s := int64(tpccInitialStock)
		if found {
			s = DecodeInt(raw)
		}
		res.Scanned++
		if s < threshold {
			res.Low++
		}
	}
	return json.Marshal(res)
}

// TPCCAuditor audits a TPC-C op stream incrementally on the shared
// engine (audit.go): per-key equality with the serial reference under the
// precedence-graph order verdict, plus the classic integrity constraints
// as a delta-maintained ConstraintSet — stock never negative (checked
// live against sampled cell values), warehouse YTD equal to the sum of
// payments, district order counters equal to the NewOrders issued.
type TPCCAuditor struct {
	*refAuditor
}

// NewTPCCAuditor creates an empty auditor.
func NewTPCCAuditor() *TPCCAuditor {
	cons := NewConstraints().
		Check(NonNegative("negative stock", "stock/", true)).
		KeyTotal(KeyTotal{
			Name: "warehouse YTD",
			Delta: func(opName string, args []byte) map[string]int64 {
				if opName != workload.TPCCPayment.String() {
					return nil
				}
				var op workload.TPCCOp
				json.Unmarshal(args, &op)
				return map[string]int64{workload.WarehouseKey(op.Warehouse): op.Amount}
			},
			Describe: func(key string, got, want int64) string {
				return fmt.Sprintf("%s: YTD %d != sum of payments %d", key, got, want)
			},
		}).
		KeyTotal(KeyTotal{
			Name: "district orders",
			Delta: func(opName string, args []byte) map[string]int64 {
				if opName != workload.TPCCNewOrder.String() {
					return nil
				}
				var op workload.TPCCOp
				json.Unmarshal(args, &op)
				return map[string]int64{workload.DistrictKey(op.Warehouse, op.District): 1}
			},
			Describe: func(key string, got, want int64) string {
				return fmt.Sprintf("%s: %d orders counted, %d issued", key, got, want)
			},
		})
	return &TPCCAuditor{newRefAuditor(auditorConfig{app: TPCCApp(), cons: cons})}
}

// RecordOp folds one applied op into the reference in serial order — the
// typed convenience the serial drivers and benchmarks use.
func (a *TPCCAuditor) RecordOp(op workload.TPCCOp) {
	args, _ := json.Marshal(op)
	a.ObserveSerial(tpccOpName(op), args)
}
