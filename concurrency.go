package tca

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/metrics"
	"tca/internal/workload"
)

// The E20/E21 concurrency drivers, shared by the bench suite and
// cmd/tcabench so the two surfaces can never report different numbers for
// the same experiment: one cell = one (mix, model, clients) triple,
// driven through pipelined client Sessions by workload.ClosedLoop, with
// the workload's Auditor running live inside the loop — Record at
// submission, Observe (plus a bounded live-value sample) as each handle
// resolves, and the precedence-graph Verify on the settled cell.

// ConcurrencyMixes are the workloads the E20 matrix sweeps: the TPC-C
// NewOrder/Payment mix (non-commutative stock writes — the order verdict
// separates real anomalies from reorder noise) and the social
// compose-post mix (fully commutative — any divergence is a delivery
// failure).
var ConcurrencyMixes = []string{"tpcc", "social"}

// AuditedMixes are the workloads the E21 live-audit-overhead sweep
// drives: every first-class App, each under its incremental Auditor.
// "market-res" is the reservation-style marketplace (ROADMAP 4b) —
// identical op mix to "market", restructured so commutativity and
// unique key ownership replace isolation; "booking" and "ledger" are
// the example programs promoted to first-class audited mixes.
var AuditedMixes = []string{"bank", "tpcc", "market", "market-res", "booking", "ledger", "social"}

// ConcurrencyOptions tunes one concurrency-cell run.
type ConcurrencyOptions struct {
	// Audit runs the workload's Auditor live inside the loop and the
	// final precedence-graph Verify. Off measures the raw harness.
	Audit bool
	// LogDir, when set and the model is Deterministic, backs the cell with
	// a real durable write-ahead log (Options.LogDir) in a fresh
	// subdirectory of LogDir, removed when the run ends — so repeated runs
	// (a benchmark growing b.N) never replay a previous run's log. The
	// modeled SequenceDelay is then not charged; the log's own append+fsync
	// cost is the measured accept latency. Other models ignore it.
	LogDir string
	// Seed varies the clients' op streams and the reservoirs' sampling
	// deterministically — the knob grid repeats turn. Zero reproduces the
	// historical fixed streams (client c seeded 100+c), so existing
	// callers and baselines are unchanged; seed s ≠ 0 gives client c the
	// stream seed 100 + s·1e6 + c, keeping repeat streams disjoint.
	Seed int64
}

// ConcurrencyResult is one cell of the concurrency matrix.
type ConcurrencyResult struct {
	// Issued counts submissions; Rejected those whose handles resolved
	// with an error (business aborts, exhausted 2PL retries, sheds the
	// session's retry budget could not absorb).
	Issued, Rejected int64
	// Shed counts the Rejected subset that failed with ErrOverloaded
	// after the session exhausted its retry budget.
	Shed int64
	// Elapsed spans first submission to settled state.
	Elapsed time.Duration
	// AcceptP50 is the median Session.Submit-to-acknowledgment time,
	// ApplyP50 the median Submit-to-Handle-resolution time — the per-cell
	// accept/apply split. The P99s are the same distributions' tails,
	// from a bounded reservoir.
	AcceptP50, ApplyP50 time.Duration
	AcceptP99, ApplyP99 time.Duration
	// Anomalies are the final divergences the order verdict could not
	// attribute to any serializable completion order.
	Anomalies []string
	// Violations counts live delta-constraint hits during the run
	// (negative stock, overdrafts — sampled at apply time).
	Violations int
	// Reordered counts final mismatches a legal reordering of racing
	// commits explains — the false positives a completion-order audit
	// would have reported, suppressed by the precedence-graph verdict.
	Reordered int
	// GraphCycles counts conflict components whose settled values are
	// explainable only by an order contradicting real-time precedence.
	GraphCycles int
	// Audited reports whether the auditor ran.
	Audited bool
	// AcceptSamples and ApplySamples are the bounded reservoirs' retained
	// sample sets, exported so grid repeats can pool their tails.
	AcceptSamples, ApplySamples []time.Duration
}

// Throughput returns applied (accepted and not rejected) ops per second.
func (r ConcurrencyResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued-r.Rejected) / r.Elapsed.Seconds()
}

// concClient is one simulated user: a Session on the cell plus its own
// seeded stream. ClosedLoop's shared op closure checks a client out of a
// pool, so each driver goroutine effectively owns one.
type concClient struct {
	sess *Session
	next func() (name string, args []byte)
}

// mixApp returns the App behind one concurrency mix.
func mixApp(mix string) (*App, error) {
	switch mix {
	case "bank":
		return BankApp(), nil
	case "tpcc":
		return TPCCApp(), nil
	case "market":
		return MarketApp(), nil
	case "market-res":
		return MarketAppReserved(), nil
	case "booking":
		return BookingApp(), nil
	case "ledger":
		return LedgerApp(), nil
	case "social":
		return SocialApp(), nil
	default:
		return nil, fmt.Errorf("tca: unknown concurrency mix %q", mix)
	}
}

// newMixAuditor returns the mix's incremental Auditor.
func newMixAuditor(mix string) Auditor {
	switch mix {
	case "bank":
		return NewBankAuditor()
	case "tpcc":
		return NewTPCCAuditor()
	case "market":
		return NewMarketAuditor()
	case "market-res":
		return NewMarketReservedAuditor()
	case "booking":
		return NewBookingAuditor()
	case "ledger":
		return NewLedgerAuditor()
	default:
		return NewSocialAuditor()
	}
}

// bankMixAccounts and bankMixBalance size the bank mix: enough seeded
// balance that the uniform transfer stream never legitimately overdrafts,
// so any overdraft or conservation hit is the cell's doing.
const (
	bankMixAccounts = 64
	bankMixBalance  = 1_000_000
)

// mixStream returns one client's seeded op stream for a mix.
func mixStream(mix string, seed int64) func() (string, []byte) {
	switch mix {
	case "bank":
		gen := workload.NewBank(seed, bankMixAccounts, 0.1)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(bankTransferArgs{From: op.From, To: op.To, Amount: op.Amount})
			return "transfer", args
		}
	case "tpcc":
		gen := workload.NewTPCC(seed, workload.DefaultTPCCConfig(4))
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return tpccOpName(op), args
		}
	case "market":
		cfg := workload.DefaultMarketConfig()
		cfg.Users, cfg.Products = 256, 64
		cfg.ZipfS = 1.3
		gen := workload.NewMarket(seed, cfg)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return marketOpName(op), args
		}
	case "market-res":
		// The same mix shape as "market" — only the reservation
		// bookkeeping (ids, quotes, claims) differs, so the reserved row
		// is comparable to the tolerate-the-drift row next to it.
		cfg := workload.DefaultMarketConfig()
		cfg.Users, cfg.Products = 256, 64
		cfg.ZipfS = 1.3
		gen := workload.NewReservedMarket(seed, cfg)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return marketOpName(op), args
		}
	case "booking":
		gen := workload.NewBooking(seed, 64, 8, 8, 0.1, 0.2)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return bookingOpName(op), args
		}
	case "ledger":
		gen := workload.NewLedger(seed, 32, 0.15)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return ledgerOpName(op), args
		}
	default:
		gen := workload.NewSocial(seed, 128, 16)
		return func() (string, []byte) {
			op := gen.Next()
			args, _ := json.Marshal(op)
			return SocialOpName(op), args
		}
	}
}

// seedMix prepares a mix's initial state on the cell and, when auditing,
// folds the same seeding into the auditor's reference. Only the bank
// needs it: accounts start funded so transfers never legitimately abort.
func seedMix(mix string, cell Cell, aud Auditor) error {
	if mix != "bank" {
		return nil
	}
	for acct := 0; acct < bankMixAccounts; acct++ {
		args, _ := json.Marshal(bankDepositArgs{Account: acct, Amount: bankMixBalance})
		reqID := fmt.Sprintf("seed/%d", acct)
		if _, err := cell.Invoke(reqID, "deposit", args, nil); err != nil {
			return err
		}
		if aud != nil {
			aud.Record(reqID, "deposit", args)
			aud.Observe(Commit{ReqID: reqID})
		}
	}
	return cell.Settle()
}

// livePeek reads a key for the auditor's live sample without settling the
// cell: the dataflow cell exposes its dirty Peek, every other cell's Read
// serves committed state directly.
func livePeek(c Cell, key string) ([]byte, bool) {
	if sc, ok := c.(*statefunCell); ok {
		raw, found, err := sc.Peek(key)
		if err != nil {
			return nil, false
		}
		return raw, found
	}
	raw, found, err := c.Read(key)
	if err != nil {
		return nil, false
	}
	return raw, found
}

// liveKeyer is the optional auditor surface the harness samples for.
type liveKeyer interface {
	LiveKeys(op string, args []byte) []string
}

// RunConcurrencyCell is RunConcurrencyCellOpts with live auditing on and
// the deterministic cell on the real durable log (a per-run directory under
// the OS temp dir) — the E20 configuration.
func RunConcurrencyCell(mix string, model ProgrammingModel, clients, ops int) (ConcurrencyResult, error) {
	return RunConcurrencyCellOpts(mix, model, clients, ops, ConcurrencyOptions{Audit: true, LogDir: os.TempDir()})
}

// RunConcurrencyCellOpts deploys the mix's App under model and drives it
// with `clients` pipelined Sessions for ~ops total submissions. The cell
// gets Options.Clients = clients (the sync cells' worker pool), 32 core
// workers, and the modeled 80µs durable-append latency — what the
// deterministic cell's group appends amortize; with ConcurrencyOptions
// .LogDir set, the deterministic cell runs on a real write-ahead log
// instead and the measured append+fsync cost replaces the model (the E20
// configuration). With auditing on,
// the mix's Auditor runs live inside the loop: each submission is
// Recorded, each resolved handle is Observed in completion order together
// with a bounded sample of live cell values for the delta constraint
// checks, and the settled cell gets the precedence-graph Verify — so
// non-commutative mixes audit exactly instead of reporting reorder noise.
// The eventual cell observes unconditionally (an accepted op is
// exactly-once in the ingress and applies even if its handle reports a
// drop or timeout); every other cell observes applied ops only — the same
// baseline rule as E17/E18/E19.
func RunConcurrencyCellOpts(mix string, model ProgrammingModel, clients, ops int, copts ConcurrencyOptions) (ConcurrencyResult, error) {
	env := NewEnv(1, 3)
	opts := Options{Clients: clients, Workers: 32, SequenceDelay: 80 * time.Microsecond}
	if copts.LogDir != "" && model == Deterministic {
		dir, err := os.MkdirTemp(copts.LogDir, "cell-")
		if err != nil {
			return ConcurrencyResult{}, err
		}
		defer os.RemoveAll(dir)
		opts.LogDir = dir
	}
	app, err := mixApp(mix)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	cell, err := DeployWith(model, app, env, opts)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	defer cell.Close()

	var aud Auditor
	var live liveKeyer
	if copts.Audit {
		aud = newMixAuditor(mix)
		defer aud.Close()
		live, _ = aud.(liveKeyer)
	}
	if err := seedMix(mix, cell, aud); err != nil {
		return ConcurrencyResult{}, err
	}

	pool := make(chan *concClient, clients)
	for c := 0; c < clients; c++ {
		streamSeed := int64(100 + c)
		sessID := fmt.Sprintf("c%d", c)
		if copts.Seed != 0 {
			streamSeed = 100 + copts.Seed*1_000_000 + int64(c)
			sessID = fmt.Sprintf("s%d/c%d", copts.Seed, c)
		}
		pool <- &concClient{
			sess: NewSession(cell, sessID, SessionOptions{MaxInFlight: 8}),
			next: mixStream(mix, streamSeed),
		}
	}

	acceptHist, applyHist := metrics.NewHistogram(), metrics.NewHistogram()
	acceptRes := workload.NewLatencyReservoir(0, copts.Seed*2+1)
	applyRes := workload.NewLatencyReservoir(0, copts.Seed*2+2)
	var rejected, shed atomic.Int64
	var auditSeq atomic.Int64
	var inflight sync.WaitGroup
	start := time.Now()
	res := workload.ClosedLoop(clients, ops/clients+1, 0, func() error {
		cl := <-pool
		defer func() { pool <- cl }()
		name, args := cl.next()
		var auditID string
		if aud != nil {
			auditID = fmt.Sprintf("a/%d", auditSeq.Add(1))
			aud.Record(auditID, name, args)
		}
		t0 := time.Now()
		h := cl.sess.Submit(name, args, nil)
		d := time.Since(t0)
		acceptHist.RecordDuration(d)
		acceptRes.Record(d)
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			<-h.Done()
			d := time.Since(t0)
			applyHist.RecordDuration(d)
			applyRes.Record(d)
			_, opErr := h.Result()
			if opErr != nil {
				rejected.Add(1)
				if errors.Is(opErr, ErrOverloaded) {
					shed.Add(1)
				}
			}
			if aud == nil {
				return
			}
			// A shed op never entered any cell's pipeline — discard its
			// intent on every model, including the eventual cell whose
			// accepted errors otherwise still apply.
			if opErr != nil && (model != StatefulDataflow || errors.Is(opErr, ErrOverloaded)) {
				aud.Discard(auditID)
				return
			}
			var sample map[string][]byte
			if live != nil {
				for _, k := range live.LiveKeys(name, args) {
					if v, found := livePeek(cell, k); found {
						if sample == nil {
							sample = make(map[string][]byte, auditLiveKeyCap)
						}
						sample[k] = v
					}
				}
			}
			var seq int64
			if sh, ok := h.(interface{ Seq() int64 }); ok {
				// The deterministic core stamps results with their log
				// position: the verdict replays components in the cell's
				// actual commit order instead of searching for one.
				seq = sh.Seq()
			}
			aud.Observe(Commit{ReqID: auditID, Op: name, Args: args, Start: t0, End: time.Now(), Live: sample, Seq: seq})
		}()
		return nil
	})
	inflight.Wait()
	if err := cell.Settle(); err != nil {
		return ConcurrencyResult{}, err
	}
	elapsed := time.Since(start)
	out := ConcurrencyResult{
		Issued:        res.Issued,
		Rejected:      rejected.Load(),
		Shed:          shed.Load(),
		Elapsed:       elapsed,
		AcceptP50:     time.Duration(acceptHist.Snapshot().P50),
		ApplyP50:      time.Duration(applyHist.Snapshot().P50),
		AcceptP99:     acceptRes.P99(),
		ApplyP99:      applyRes.P99(),
		AcceptSamples: acceptRes.Samples(),
		ApplySamples:  applyRes.Samples(),
	}
	if aud != nil {
		anomalies, err := aud.Verify(cell)
		if err != nil {
			return ConcurrencyResult{}, err
		}
		stats := aud.Stats()
		out.Anomalies = anomalies
		out.Violations = stats.LiveViolations
		out.Reordered = stats.Reordered
		out.GraphCycles = stats.GraphCycles
		out.Audited = true
	}
	return out, nil
}

// MeasureCellCapacity estimates one (mix, model) cell's peak closed-loop
// throughput: 16 pipelined clients, auditing off, the deterministic cell
// on a real temp-dir log. The E23 sweep offers multiples of this number.
func MeasureCellCapacity(mix string, model ProgrammingModel, ops int) (float64, error) {
	r, err := RunConcurrencyCellOpts(mix, model, 16, ops, ConcurrencyOptions{LogDir: os.TempDir()})
	if err != nil {
		return 0, err
	}
	return r.Throughput(), nil
}

// OverloadOptions tunes one open-loop overload run.
type OverloadOptions struct {
	// Arrival selects the arrival process: "poisson" (default, smooth) or
	// "bursty" (a 2-state MMPP at the same mean rate with 4× bursts).
	Arrival string
	// Shed enables admission control: the cell runs with a tight bounded
	// queue (Options.MaxPending = 64) and rejects excess load with
	// ErrOverloaded. Off (false) disables the bounds (MaxPending = -1) —
	// the pre-admission-control behavior, where overload queues without
	// limit instead of shedding.
	Shed bool
	// Audit runs the mix's Auditor live during the overload run and the
	// final precedence-graph Verify — the conformance configuration: a
	// shed op must never surface as an anomaly or violation.
	Audit bool
	// LogDir backs the deterministic cell with a real durable log, as in
	// ConcurrencyOptions.
	LogDir string
	// Seed fixes the arrival schedule and op streams (zero means 1).
	Seed int64
}

// OverloadResult is one point on the E23 saturation frontier.
type OverloadResult struct {
	// Offered is the arrival rate the run targeted (ops/second).
	Offered float64
	// Issued counts arrivals; Shed those rejected with ErrOverloaded;
	// Failed those that were accepted but resolved with any other error.
	Issued, Shed, Failed int64
	// Elapsed spans the first arrival to the last handle resolution.
	Elapsed time.Duration
	// Accept latencies run from each arrival's *scheduled* time to the
	// cell's admission verdict, so queueing delay counts (open loop);
	// Apply latencies run from the same origin to handle resolution, for
	// accepted ops only.
	AcceptP50, AcceptP99, AcceptP999 time.Duration
	ApplyP99, ApplyP999              time.Duration
	// AcceptSamples and ApplySamples are the bounded reservoirs' retained
	// sample sets, exported so grid repeats can pool their tails.
	AcceptSamples, ApplySamples []time.Duration
	// Anomalies and Violations are the audit verdict when Audit was on.
	Anomalies  []string
	Violations int
	Audited    bool
}

// Completed returns how many arrivals were accepted and applied.
func (r OverloadResult) Completed() int64 { return r.Issued - r.Shed - r.Failed }

// Goodput returns completed (accepted and applied) ops per second —
// the number that stays flat past saturation with shedding on and
// collapses with it off.
func (r OverloadResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed()) / r.Elapsed.Seconds()
}

// ShedFraction returns the fraction of arrivals shed.
func (r OverloadResult) ShedFraction() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Issued)
}

// RunOverloadCell deploys the mix's App under model and offers it an
// open-loop stream of ops arrivals at the given rate (ops/second),
// submitted directly on the Cell — no Session retries, so the shed rate
// is the cell's own admission verdict. Arrivals keep coming regardless
// of how the cell keeps up: with shedding off and the rate past
// capacity, accept latency grows without bound (the legacy blocking
// queues) and goodput collapses; with shedding on the cell rejects the
// excess in ~constant time and goodput holds at the frontier. Latency is
// measured from each arrival's scheduled time (queueing delay counts)
// into bounded reservoirs.
func RunOverloadCell(mix string, model ProgrammingModel, rate float64, ops int, o OverloadOptions) (OverloadResult, error) {
	if rate <= 0 || ops <= 0 {
		return OverloadResult{}, fmt.Errorf("tca: overload run needs rate > 0 and ops > 0 (got %g, %d)", rate, ops)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	env := NewEnv(1, 3)
	opts := Options{Clients: 16, Workers: 32, SequenceDelay: 80 * time.Microsecond}
	if o.Shed {
		// A tight explicit bound (not the roomy defaults) so the frontier
		// engages within an experiment-sized run on every cell.
		opts.MaxPending = 64
	} else {
		opts.MaxPending = -1
	}
	if o.LogDir != "" && model == Deterministic {
		dir, err := os.MkdirTemp(o.LogDir, "cell-")
		if err != nil {
			return OverloadResult{}, err
		}
		defer os.RemoveAll(dir)
		opts.LogDir = dir
	}
	app, err := mixApp(mix)
	if err != nil {
		return OverloadResult{}, err
	}
	cell, err := DeployWith(model, app, env, opts)
	if err != nil {
		return OverloadResult{}, err
	}
	defer cell.Close()

	var aud Auditor
	if o.Audit {
		aud = newMixAuditor(mix)
		defer aud.Close()
	}
	if err := seedMix(mix, cell, aud); err != nil {
		return OverloadResult{}, err
	}

	var arrivals workload.ArrivalProcess
	switch o.Arrival {
	case "", "poisson":
		arrivals = workload.NewPoissonArrivals(seed, rate)
	case "bursty":
		arrivals = workload.NewMMPPArrivals(seed, rate, 4, 10*time.Millisecond)
	default:
		return OverloadResult{}, fmt.Errorf("tca: unknown arrival process %q", o.Arrival)
	}
	stream := mixStream(mix, seed+1)

	accept := workload.NewLatencyReservoir(8192, seed)
	apply := workload.NewLatencyReservoir(8192, seed+1)
	var shed, failed atomic.Int64
	var wg sync.WaitGroup
	// finish drains one submission: classify the outcome, record apply
	// latency for ops that entered the pipeline, and keep the auditor's
	// intent set exact — a shed op is always Discarded.
	finish := func(h Handle, reqID, name string, args []byte, sched time.Time) {
		<-h.Done()
		_, opErr := h.Result()
		if opErr != nil {
			if errors.Is(opErr, ErrOverloaded) {
				shed.Add(1)
				if aud != nil {
					aud.Discard(reqID)
				}
				return
			}
			failed.Add(1)
		}
		apply.Record(time.Since(sched))
		if aud == nil {
			return
		}
		if opErr != nil && model != StatefulDataflow {
			aud.Discard(reqID)
			return
		}
		var seq int64
		if sh, ok := h.(interface{ Seq() int64 }); ok {
			seq = sh.Seq()
		}
		aud.Observe(Commit{ReqID: reqID, Op: name, Args: args, Start: sched, End: time.Now(), Seq: seq})
	}
	start := time.Now()
	next := start
	for i := 0; i < ops; i++ {
		next = next.Add(arrivals.Gap())
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		sched := next
		name, args := stream()
		reqID := fmt.Sprintf("ol/%d", i)
		if aud != nil {
			aud.Record(reqID, name, args)
		}
		wg.Add(1)
		if o.Shed && model != Deterministic {
			// Admission control makes Submit's verdict ~immediate (a token
			// or a shed), so the pacing loop submits inline — which is also
			// what lets a backlog actually accumulate against the bound
			// instead of being drained by the scheduler between arrivals —
			// and only the await runs concurrently. The deterministic cell
			// is the exception: its Submit return is the durable ack, whose
			// cost amortizes only across concurrent submitters (group
			// appends), while its admission verdict already fires at the
			// bounded batch queue before the ack wait parks — so it takes
			// the concurrent path below even with shedding on.
			h := cell.Submit(reqID, name, args, nil)
			accept.Record(time.Since(sched))
			go func() {
				defer wg.Done()
				finish(h, reqID, name, args, sched)
			}()
		} else {
			// Legacy queues block the submitter when full; the open loop
			// must keep offering regardless, so each arrival submits from
			// its own goroutine — the unbounded goroutine pile IS the
			// unbounded queue, and the blocked time lands in the accept
			// tail.
			go func() {
				defer wg.Done()
				h := cell.Submit(reqID, name, args, nil)
				accept.Record(time.Since(sched))
				finish(h, reqID, name, args, sched)
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := cell.Settle(); err != nil {
		return OverloadResult{}, err
	}
	out := OverloadResult{
		Offered:       rate,
		Issued:        int64(ops),
		Shed:          shed.Load(),
		Failed:        failed.Load(),
		Elapsed:       elapsed,
		AcceptP50:     accept.P50(),
		AcceptP99:     accept.P99(),
		AcceptP999:    accept.P999(),
		ApplyP99:      apply.P99(),
		ApplyP999:     apply.P999(),
		AcceptSamples: accept.Samples(),
		ApplySamples:  apply.Samples(),
	}
	if aud != nil {
		anomalies, err := aud.Verify(cell)
		if err != nil {
			return OverloadResult{}, err
		}
		out.Anomalies = anomalies
		out.Violations = aud.Stats().LiveViolations
		out.Audited = true
	}
	return out, nil
}
