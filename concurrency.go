package tca

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tca/internal/metrics"
	"tca/internal/workload"
)

// The E20 concurrency-matrix driver, shared by the bench suite
// (BenchmarkE20_ConcurrencyMatrix) and cmd/tcabench so the two surfaces
// can never report different numbers for the same experiment: one cell =
// one (mix, model, clients) triple, driven through pipelined client
// Sessions by workload.ClosedLoop.

// ConcurrencyMixes are the workloads the matrix sweeps: the TPC-C
// NewOrder/Payment mix (order-confluent state — concurrency anomalies are
// isolation failures) and the social compose-post mix (fully commutative
// — any divergence is a delivery failure).
var ConcurrencyMixes = []string{"tpcc", "social"}

// ConcurrencyResult is one cell of the concurrency matrix.
type ConcurrencyResult struct {
	// Issued counts submissions; Rejected those whose handles resolved
	// with an error (business aborts, exhausted 2PL retries).
	Issued, Rejected int64
	// Elapsed spans first submission to settled state.
	Elapsed time.Duration
	// AcceptP50 is the median Session.Submit-to-acknowledgment time,
	// ApplyP50 the median Submit-to-Handle-resolution time — the per-cell
	// accept/apply split.
	AcceptP50, ApplyP50 time.Duration
	// Anomalies are the auditor's divergences from the serial reference.
	Anomalies []string
}

// Throughput returns applied (accepted and not rejected) ops per second.
func (r ConcurrencyResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued-r.Rejected) / r.Elapsed.Seconds()
}

// concClient is one simulated user: a Session on the cell plus its own
// seeded stream. ClosedLoop's shared op closure checks a client out of a
// pool, so each driver goroutine effectively owns one.
type concClient struct {
	sess *Session
	next func() (name string, args []byte, record func())
}

// RunConcurrencyCell deploys the mix's App under model and drives it with
// `clients` pipelined Sessions for ~ops total submissions. The cell gets
// Options.Clients = clients (the sync cells' worker pool), 32 core
// workers, and the modeled 80µs durable-append latency (E16's figure) —
// what the deterministic cell's group appends amortize. Ops are audited
// against the serial reference in completion order: both mixes' state
// models are commutative or order-confluent, so divergence is an
// isolation or delivery anomaly, not reorder noise. The eventual cell
// records unconditionally (an accepted op is exactly-once in the ingress
// and applies even if its handle reports a drop or timeout); every other
// cell records applied ops only — the same baseline rule as E17/E18/E19.
func RunConcurrencyCell(mix string, model ProgrammingModel, clients, ops int) (ConcurrencyResult, error) {
	env := NewEnv(1, 3)
	opts := Options{Clients: clients, Workers: 32, SequenceDelay: 80 * time.Microsecond}
	var app *App
	switch mix {
	case "tpcc":
		app = TPCCApp()
	case "social":
		app = SocialApp()
	default:
		return ConcurrencyResult{}, fmt.Errorf("tca: unknown concurrency mix %q", mix)
	}
	cell, err := DeployWith(model, app, env, opts)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	defer cell.Close()

	var auditMu sync.Mutex
	tpccAudit := NewTPCCAuditor()
	socialAudit := NewSocialAuditor()
	pool := make(chan *concClient, clients)
	for c := 0; c < clients; c++ {
		cl := &concClient{sess: NewSession(cell, fmt.Sprintf("c%d", c), SessionOptions{MaxInFlight: 8})}
		if mix == "tpcc" {
			gen := workload.NewTPCC(int64(100+c), workload.DefaultTPCCConfig(4))
			cl.next = func() (string, []byte, func()) {
				op := gen.Next()
				args, _ := json.Marshal(op)
				return tpccOpName(op), args, func() {
					auditMu.Lock()
					tpccAudit.Record(op)
					auditMu.Unlock()
				}
			}
		} else {
			gen := workload.NewSocial(int64(100+c), 128, 16)
			cl.next = func() (string, []byte, func()) {
				op := gen.Next()
				args, _ := json.Marshal(op)
				return SocialOpName(op), args, func() {
					auditMu.Lock()
					socialAudit.Record(op)
					auditMu.Unlock()
				}
			}
		}
		pool <- cl
	}

	acceptHist, applyHist := metrics.NewHistogram(), metrics.NewHistogram()
	var rejected atomic.Int64
	var inflight sync.WaitGroup
	start := time.Now()
	res := workload.ClosedLoop(clients, ops/clients+1, 0, func() error {
		cl := <-pool
		defer func() { pool <- cl }()
		name, args, record := cl.next()
		t0 := time.Now()
		h := cl.sess.Submit(name, args, nil)
		acceptHist.RecordDuration(time.Since(t0))
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			<-h.Done()
			applyHist.RecordDuration(time.Since(t0))
			_, opErr := h.Result()
			if opErr != nil {
				rejected.Add(1)
			}
			if opErr == nil || model == StatefulDataflow {
				record()
			}
		}()
		return nil
	})
	inflight.Wait()
	if err := cell.Settle(); err != nil {
		return ConcurrencyResult{}, err
	}
	elapsed := time.Since(start)
	var anomalies []string
	if mix == "tpcc" {
		anomalies, err = tpccAudit.Verify(cell)
	} else {
		anomalies, err = socialAudit.Verify(cell)
	}
	if err != nil {
		return ConcurrencyResult{}, err
	}
	return ConcurrencyResult{
		Issued:    res.Issued,
		Rejected:  rejected.Load(),
		Elapsed:   elapsed,
		AcceptP50: time.Duration(acceptHist.Snapshot().P50),
		ApplyP50:  time.Duration(applyHist.Snapshot().P50),
		Anomalies: anomalies,
	}, nil
}
