# verify is what CI runs (.github/workflows/ci.yml): formatting, vet,
# build, the full test suite under the race detector, and a one-iteration
# benchmark smoke pass so bench-only code paths can't rot unbuilt.
.PHONY: verify fmt test bench bench-smoke bench-json bench-gate bench-baseline

verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) bench-smoke

fmt:
	gofmt -w .

test:
	go test ./...

bench:
	go test -bench . -benchtime 1000x

# bench-smoke runs every benchmark exactly once (no tests): a fast
# compile-and-execute check for the bench-only code paths. The E21 pass
# through tcabench exercises one live-audited concurrency cell via the
# binary's own flag surface, so the incremental-auditor path can't rot;
# the E22 pass drives real-WAL core cells on throwaway temp-dir logs
# (removed when the run ends), so the durable-log path gets a real
# append+fsync+replay smoke on every verify; the E23 pass measures a
# capacity and sweeps offered load past it through the admission-control
# path (bounded queues, typed sheds, open-loop reservoirs) on every cell;
# the E24 pass deploys a 2-region async replica group and drives the
# geo-replication path end to end (shipping, convergence, staleness
# probe) plus the sequenced sweep through the same driver.
bench-smoke:
	go test -bench . -benchtime 1x -run '^$$'
	go run ./cmd/tcabench -experiment e21 -ops 24 > /dev/null
	go run ./cmd/tcabench -experiment e22 -ops 64 > /dev/null
	go run ./cmd/tcabench -experiment e23 -ops 16 > /dev/null
	go run ./cmd/tcabench -experiment e24 -ops 48 > /dev/null

# bench-json writes a machine-readable summary of the headline
# experiments to BENCH_latest.json so the perf trajectory can be tracked
# across PRs (compare the same row/metric between commits).
BENCH_OPS ?= 300
bench-json:
	go run ./cmd/tcabench -json -ops $(BENCH_OPS) > BENCH_latest.json
	@echo "wrote BENCH_latest.json"

# bench-gate is the pinned regression gate: run the statistical gate grid
# (tcabench -grid: E10's three load models, a model-mode E16 partition
# pair, one E23 shed-on overload point, one E24 2-region async geo point
# — each row GATE_REPEATS seeded repeats) and diff it against the
# checked-in baseline
# (ci/bench_baseline.json) with the std-aware compare: a throughput delta
# gates only when it exceeds ±20% AND 2× the pooled repeat std, and a row
# missing from the fresh run fails outright. The rows are pinned by
# construction, not the host: E10 drives workload.SpinService(1, 100µs)
# (capacity 10k ops/s), E16 runs the core on the modeled 80µs append (no
# filesystem), E23 offers a fixed 2000/s well below capacity so goodput
# tracks the offered rate, and E24 paces a 2-region async replica group
# at a fixed 500/s with modeled WAN latency (the gated read p99 is
# fabric-trace time). The grid JSON lands in BENCH_gate.json
# (CI uploads it as an artifact).
GATE_OPS ?= 8000
GATE_REPEATS ?= 3
bench-gate:
	go run ./cmd/tcabench -grid -ops $(GATE_OPS) -repeats $(GATE_REPEATS) -seed 1 > BENCH_gate.json
	go run ./cmd/tcabench -compare -threshold 20 ci/bench_baseline.json BENCH_gate.json

# bench-baseline regenerates the gate baseline in place — deliberately,
# with the same knobs as bench-gate, only when the harness or the gate
# grid itself changes.
bench-baseline:
	go run ./cmd/tcabench -grid -ops $(GATE_OPS) -repeats $(GATE_REPEATS) -seed 1 > ci/bench_baseline.json
	@echo "wrote ci/bench_baseline.json"
