# verify is what CI runs (.github/workflows/ci.yml): formatting, vet,
# build, and the full test suite under the race detector.
.PHONY: verify fmt test bench

verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go build ./...
	go test -race ./...

fmt:
	gofmt -w .

test:
	go test ./...

bench:
	go test -bench . -benchtime 1000x
