# verify is what CI runs (.github/workflows/ci.yml): formatting, vet,
# build, the full test suite under the race detector, and a one-iteration
# benchmark smoke pass so bench-only code paths can't rot unbuilt.
.PHONY: verify fmt test bench bench-smoke bench-json

verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) bench-smoke

fmt:
	gofmt -w .

test:
	go test ./...

bench:
	go test -bench . -benchtime 1000x

# bench-smoke runs every benchmark exactly once (no tests): a fast
# compile-and-execute check for the bench-only code paths. The E21 pass
# through tcabench exercises one live-audited concurrency cell via the
# binary's own flag surface, so the incremental-auditor path can't rot;
# the E22 pass drives real-WAL core cells on throwaway temp-dir logs
# (removed when the run ends), so the durable-log path gets a real
# append+fsync+replay smoke on every verify.
bench-smoke:
	go test -bench . -benchtime 1x -run '^$$'
	go run ./cmd/tcabench -experiment e21 -ops 24 > /dev/null
	go run ./cmd/tcabench -experiment e22 -ops 64 > /dev/null

# bench-json writes a machine-readable summary of the headline
# experiments to BENCH_latest.json so the perf trajectory can be tracked
# across PRs (compare the same row/metric between commits).
BENCH_OPS ?= 300
bench-json:
	go run ./cmd/tcabench -json -ops $(BENCH_OPS) > BENCH_latest.json
	@echo "wrote BENCH_latest.json"
