# verify is what CI runs (.github/workflows/ci.yml): formatting, vet,
# build, the full test suite under the race detector, and a one-iteration
# benchmark smoke pass so bench-only code paths can't rot unbuilt.
.PHONY: verify fmt test bench bench-smoke bench-json bench-gate

verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) bench-smoke

fmt:
	gofmt -w .

test:
	go test ./...

bench:
	go test -bench . -benchtime 1000x

# bench-smoke runs every benchmark exactly once (no tests): a fast
# compile-and-execute check for the bench-only code paths. The E21 pass
# through tcabench exercises one live-audited concurrency cell via the
# binary's own flag surface, so the incremental-auditor path can't rot;
# the E22 pass drives real-WAL core cells on throwaway temp-dir logs
# (removed when the run ends), so the durable-log path gets a real
# append+fsync+replay smoke on every verify; the E23 pass measures a
# capacity and sweeps offered load past it through the admission-control
# path (bounded queues, typed sheds, open-loop reservoirs) on every cell.
bench-smoke:
	go test -bench . -benchtime 1x -run '^$$'
	go run ./cmd/tcabench -experiment e21 -ops 24 > /dev/null
	go run ./cmd/tcabench -experiment e22 -ops 64 > /dev/null
	go run ./cmd/tcabench -experiment e23 -ops 16 > /dev/null

# bench-json writes a machine-readable summary of the headline
# experiments to BENCH_latest.json so the perf trajectory can be tracked
# across PRs (compare the same row/metric between commits).
BENCH_OPS ?= 300
bench-json:
	go run ./cmd/tcabench -json -ops $(BENCH_OPS) > BENCH_latest.json
	@echo "wrote BENCH_latest.json"

# bench-gate is the pinned regression gate: rerun the E10 load-model grid
# and diff it against the checked-in baseline (ci/bench_baseline.json),
# failing on any throughput delta beyond ±20%. E10 is the gate because
# its service is workload.SpinService(1, 100µs) — capacity 10k ops/s by
# construction, wall-clock spin, one slot — so its throughputs are pinned
# by the harness, not the host: a regression here means the driver or
# admission path got slower, on any machine. Regenerate the baseline
# (deliberately, with the same GATE_OPS) only when the harness itself
# changes:  go run ./cmd/tcabench -experiment e10 -ops 8000 -json > ci/bench_baseline.json
# GATE_OPS is sized so the saturated open-loop row runs long enough to
# settle: at 2000 ops its throughput swings ~30% run to run; at 8000 the
# spread is ~7%, comfortably inside the ±20% gate.
GATE_OPS ?= 8000
bench-gate:
	@tmp=$$(mktemp); \
	go run ./cmd/tcabench -experiment e10 -ops $(GATE_OPS) -json > $$tmp || { rm -f $$tmp; exit 1; }; \
	go run ./cmd/tcabench -compare -threshold 20 ci/bench_baseline.json $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status
