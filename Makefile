# verify is what CI runs (.github/workflows/ci.yml): formatting, vet,
# build, the full test suite under the race detector, and a one-iteration
# benchmark smoke pass so bench-only code paths can't rot unbuilt.
.PHONY: verify fmt test bench bench-smoke

verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) bench-smoke

fmt:
	gofmt -w .

test:
	go test ./...

bench:
	go test -bench . -benchtime 1000x

# bench-smoke runs every benchmark exactly once (no tests): a fast
# compile-and-execute check for the bench-only code paths.
bench-smoke:
	go test -bench . -benchtime 1x -run '^$$'
